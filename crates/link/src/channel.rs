//! Bandwidth model of the statistics link.
//!
//! A sampling window of `W` physical seconds gives the dispatcher a
//! transmission budget of `bandwidth × W` bits. When the window's statistics
//! exceed it (event-logging sniffers on a busy platform), the surplus
//! transmission time is charged to the VPCM as clock-freeze time — emulation
//! slows down, statistics survive.

use crate::frame::{MacFrame, MAX_PAYLOAD};
use bytes::Bytes;
use temu_state::{StateError, StateReader, StateWriter};

/// Link parameters.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EthernetConfig {
    /// Raw link bandwidth, bits per second (the paper's boards speak
    /// 100 Mb/s Fast Ethernet).
    pub bandwidth_bps: u64,
    /// One-way latency, seconds (cable + MAC pipeline).
    pub latency_s: f64,
}

impl Default for EthernetConfig {
    fn default() -> EthernetConfig {
        EthernetConfig { bandwidth_bps: 100_000_000, latency_s: 50e-6 }
    }
}

/// Cumulative link statistics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct LinkStats {
    /// Frames transmitted in both directions.
    pub frames: u64,
    /// Wire bytes transmitted (including preamble/IFG overhead).
    pub wire_bytes: u64,
    /// Seconds of wire time consumed.
    pub busy_seconds: f64,
    /// Seconds of VPCM freeze caused by congestion.
    pub freeze_seconds: f64,
}

impl LinkStats {
    /// Serializes the counters into a checkpoint stream (floats by bit
    /// pattern, so a restored run continues on the identical trajectory).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.frames);
        w.u64(self.wire_bytes);
        w.f64(self.busy_seconds);
        w.f64(self.freeze_seconds);
    }

    /// Restores the counters from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.frames = r.u64()?;
        self.wire_bytes = r.u64()?;
        self.busy_seconds = r.f64()?;
        self.freeze_seconds = r.f64()?;
        Ok(())
    }
}

/// The modeled Ethernet link between the FPGA and the host PC.
#[derive(Clone, Debug)]
pub struct EthernetLink {
    cfg: EthernetConfig,
    stats: LinkStats,
}

impl EthernetLink {
    /// Creates a link with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn new(cfg: EthernetConfig) -> EthernetLink {
        assert!(cfg.bandwidth_bps > 0, "link bandwidth must be nonzero");
        EthernetLink { cfg, stats: LinkStats::default() }
    }

    /// The link parameters.
    pub fn config(&self) -> &EthernetConfig {
        &self.cfg
    }

    /// Statistics since construction.
    pub fn stats(&self) -> &LinkStats {
        &self.stats
    }

    /// Splits a payload into MTU-sized frames (the dispatcher's packetizer).
    pub fn packetize(&self, payload: &Bytes, to_host: bool) -> Vec<MacFrame> {
        let mut frames = Vec::with_capacity(payload.len().div_ceil(MAX_PAYLOAD).max(1));
        let mut off = 0;
        loop {
            let end = (off + MAX_PAYLOAD).min(payload.len());
            let chunk = payload.slice(off..end);
            frames.push(if to_host { MacFrame::to_host(chunk) } else { MacFrame::to_fpga(chunk) });
            off = end;
            if off >= payload.len() {
                break;
            }
        }
        frames
    }

    /// Seconds the wire needs for a set of frames.
    pub fn tx_seconds(&self, frames: &[MacFrame]) -> f64 {
        let bytes: usize = frames.iter().map(MacFrame::wire_bytes).sum();
        bytes as f64 * 8.0 / self.cfg.bandwidth_bps as f64 + self.cfg.latency_s
    }

    /// Serializes the cumulative statistics (the link's only mutable state).
    pub fn save_state(&self, w: &mut StateWriter) {
        self.stats.save_state(w);
    }

    /// Restores statistics saved by [`EthernetLink::save_state`].
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.stats.load_state(r)
    }

    /// Transmits `frames` within a sampling window of `window_seconds` of
    /// physical time. Returns the **freeze seconds**: the transmission time
    /// that did not fit into the window and must stall the virtual platform
    /// clock (0.0 when the link keeps up).
    pub fn send_window(&mut self, frames: &[MacFrame], window_seconds: f64) -> f64 {
        let t = self.tx_seconds(frames);
        self.stats.frames += frames.len() as u64;
        self.stats.wire_bytes += frames.iter().map(|f| f.wire_bytes() as u64).sum::<u64>();
        self.stats.busy_seconds += t;
        let freeze = (t - window_seconds).max(0.0);
        self.stats.freeze_seconds += freeze;
        freeze
    }
}

impl Default for EthernetLink {
    fn default() -> EthernetLink {
        EthernetLink::new(EthernetConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_splits_on_mtu() {
        let link = EthernetLink::default();
        let frames = link.packetize(&Bytes::from(vec![0u8; 3200]), true);
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0].payload.len(), 1500);
        assert_eq!(frames[2].payload.len(), 200);
        let empty = link.packetize(&Bytes::new(), true);
        assert_eq!(empty.len(), 1, "empty payload still yields one frame");
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let link = EthernetLink::default();
        let frames = link.packetize(&Bytes::from(vec![0u8; 1500]), true);
        // 1500 payload + 38 overhead = 1538 wire bytes at 100 Mb/s ≈ 123 µs
        // plus 50 µs latency.
        let t = link.tx_seconds(&frames);
        assert!((t - (1538.0 * 8.0 / 100e6 + 50e-6)).abs() < 1e-9);
    }

    #[test]
    fn small_window_payload_never_congests() {
        // A count-logging stats packet (~100 bytes) in a 10 ms window.
        let mut link = EthernetLink::default();
        let frames = link.packetize(&Bytes::from(vec![0u8; 100]), true);
        assert_eq!(link.send_window(&frames, 0.010), 0.0);
        assert_eq!(link.stats().frames, 1);
    }

    #[test]
    fn oversized_event_dump_freezes_the_clock() {
        // 10 MB of event logs cannot cross a 100 Mb/s link in 10 ms.
        let mut link = EthernetLink::default();
        let frames = link.packetize(&Bytes::from(vec![0u8; 10_000_000]), true);
        let freeze = link.send_window(&frames, 0.010);
        assert!(freeze > 0.5, "10 MB at 100 Mb/s takes ~0.82 s: freeze = {freeze}");
        assert!(link.stats().freeze_seconds > 0.5);
    }

    #[test]
    fn freeze_scales_with_overload() {
        let mut link = EthernetLink::default();
        let small = link.packetize(&Bytes::from(vec![0u8; 200_000]), true);
        let big = link.packetize(&Bytes::from(vec![0u8; 400_000]), true);
        let f1 = link.send_window(&small, 0.001);
        let f2 = link.send_window(&big, 0.001);
        assert!(f2 > f1 && f1 > 0.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        let _ = EthernetLink::new(EthernetConfig { bandwidth_bps: 0, latency_s: 0.0 });
    }
}
