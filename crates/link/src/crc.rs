//! IEEE 802.3 CRC-32 (reflected, polynomial `0xEDB88320`).

/// Computes the Ethernet frame check sequence over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = b"temu statistics packet".to_vec();
        let good = crc32(&data);
        data[3] ^= 0x10;
        assert_ne!(crc32(&data), good);
    }
}
