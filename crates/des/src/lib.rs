//! # temu-des — signal-level cycle-driven MPSoC simulation (the baseline)
//!
//! This crate is the Rust stand-in for MPARM, the cycle-accurate SystemC
//! simulator the paper compares against (Table 3). It simulates the *same*
//! platform with the *same* timing semantics as the fast `temu-platform`
//! engine — the two are cross-validated to produce **identical cycle
//! counts** — but executes the way signal-level simulators do:
//!
//! * a global clock advances one cycle per iteration,
//! * every cycle, every component is evaluated (cores, caches, memory
//!   controllers, memories, bus arbiter / NoC switches), with a two-pass
//!   evaluate/settle loop per cycle (the delta-cycle discipline of
//!   HDL/SystemC kernels),
//! * component ports are sampled onto a [`SignalBoard`] every cycle and
//!   committed with transition detection — the per-signal management work
//!   that the paper identifies as the reason "these complex SW environments
//!   are very limited in performance (circa 10-100 KHz)".
//!
//! Per-cycle cost therefore grows with the number of components while the
//! transaction-level engine's cost grows only with executed instructions —
//! exactly the scaling contrast behind the paper's Table 3, where the
//! speed-up rises from 88× (1 core) to 664× (8 cores).

mod signals;
mod sim;

pub use signals::SignalBoard;
pub use sim::{DesMachine, DesSummary};
