//! Integration tests of the design-space sweep engine: grid execution
//! through `Campaign`, streaming progress, content-keyed caching (memory
//! and disk), and per-point error containment.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use temu_framework::{ImplicitSolve, ResultCache, Scenario, Sweep, TemuError, Workload};
use temu_platform::PlatformError;
use temu_workloads::matrix::MatrixConfig;

/// The cheapest useful scenario: one core, a one-iteration 4×4 MATRIX
/// kernel, a single 0.2 ms sampling window.
fn tiny() -> Scenario {
    Scenario::new()
        .cores(1)
        .workload(Workload::Matrix(MatrixConfig { n: 4, iters: 1, cores: 1 }))
        .sampling_window_s(0.0002)
        .windows(1)
}

fn tiny_matrix(iters: u32) -> Workload {
    Workload::Matrix(MatrixConfig { n: 4, iters, cores: 1 })
}

#[test]
fn identical_sweep_rerun_is_all_cache_hits() {
    let cache = ResultCache::in_memory();
    let sweep = || {
        Sweep::new("cache-test", tiny())
            .workloads(vec![tiny_matrix(1), tiny_matrix(2)])
            .windows(&[1, 2])
            .threads(2)
    };
    let first = sweep().run_cached(&cache);
    assert_eq!(first.points.len(), 4);
    assert!(first.all_ok(), "{}", first.to_json());
    assert_eq!(first.executed, 4);
    assert_eq!(first.cache_hits, 0);
    assert_eq!(cache.len(), 4);
    for p in &first.points {
        assert!(!p.cache_hit);
        let s = p.outcome.as_ref().unwrap();
        assert!(s.windows >= 1);
        assert!(s.peak_temp_k.unwrap() > 300.0);
    }

    let second = sweep().run_cached(&cache);
    assert_eq!(second.executed, 0, "identical rerun executes zero scenarios");
    assert_eq!(second.cache_hits, 4, "every point is served from the cache");
    assert!(second.all_ok());
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.key, b.key);
        assert!(b.cache_hit);
        assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap(), "cached summary is identical");
    }

    // A third sweep that merely overlaps reuses the shared points.
    let overlapping = Sweep::new("overlap", tiny())
        .workloads(vec![tiny_matrix(1), tiny_matrix(3)])
        .windows(&[1])
        .run_cached(&cache);
    assert_eq!(overlapping.cache_hits, 1, "workload=1/windows=1 was already cached");
    assert_eq!(overlapping.executed, 1);
}

#[test]
fn disk_store_makes_reruns_incremental_across_cache_instances() {
    let path = std::env::temp_dir().join(format!("temu_sweep_store_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let sweep = || Sweep::new("disk", tiny()).workloads(vec![tiny_matrix(1), tiny_matrix(2), tiny_matrix(3)]);

    let cache = ResultCache::with_store(&path).unwrap();
    assert!(cache.is_empty());
    let first = sweep().run_cached(&cache);
    assert!(first.all_ok(), "{}", first.to_json());
    assert_eq!(first.executed, 3);
    drop(cache);

    // A brand-new cache instance loads the persisted entries.
    let reloaded = ResultCache::with_store(&path).unwrap();
    assert_eq!(reloaded.len(), 3, "store reloads every persisted point");
    let second = sweep().run_cached(&reloaded);
    assert_eq!(second.executed, 0);
    assert_eq!(second.cache_hits, 3);
    for (a, b) in first.points.iter().zip(&second.points) {
        let (x, y) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(x.windows, y.windows);
        assert_eq!(x.instructions, y.instructions);
        assert!((x.fpga_s - y.fpga_s).abs() < 1e-9, "numeric fields survive the JSON round trip");
        assert_eq!(x.time_at_hz.len(), y.time_at_hz.len());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_store_lines_are_skipped_without_dropping_later_records() {
    // Simulate a writer that died mid-append: a torn partial record with
    // no trailing newline, after which another O_APPEND writer glued a
    // complete record onto the same physical line — followed by further
    // intact lines. The loader must recover every complete record and
    // skip only the torn one.
    let path = std::env::temp_dir().join(format!("temu_torn_store_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let seed = ResultCache::with_store(&path).unwrap();
    let report = Sweep::new("seed", tiny())
        .workloads(vec![tiny_matrix(1), tiny_matrix(2), tiny_matrix(3)])
        .run_cached(&seed);
    assert!(report.all_ok());
    drop(seed);

    // Tear the store: truncate the first line mid-record and glue the
    // remaining content (which starts with line 2's complete record)
    // directly after it, newline-free — exactly what interleaved
    // crash-and-append produces.
    let content = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert_eq!(lines.len(), 4, "version header + 3 records");
    assert!(lines[0].starts_with("{\"temu_store\""), "fresh stores open with the header line");
    let torn =
        format!("{}\n{}{}\n{}\n", lines[0], &lines[1][..lines[1].len() / 2], lines[2], lines[3]);
    std::fs::write(&path, torn).unwrap();

    let reloaded = ResultCache::with_store(&path).unwrap();
    assert_eq!(reloaded.len(), 2, "both intact records survive; only the torn one is lost");

    // A trailing torn partial (crash during the very last append) is
    // skipped without disturbing anything before it, and a foreign line
    // starting with multi-byte UTF-8 must not panic the resync scan.
    let content = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, format!("é foreign bytes\n{content}{{\"key\": \"1234\", \"windows\": 5")).unwrap();
    let reloaded = ResultCache::with_store(&path).unwrap();
    assert_eq!(reloaded.len(), 2, "torn trailing partial and foreign line are skipped");

    // The torn point simply re-executes on the next sweep.
    let rerun = Sweep::new("seed", tiny())
        .workloads(vec![tiny_matrix(1), tiny_matrix(2), tiny_matrix(3)])
        .run_cached(&reloaded);
    assert_eq!(rerun.cache_hits, 2);
    assert_eq!(rerun.executed, 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn mostly_dead_store_is_compacted_on_load_and_round_trips() {
    let path = std::env::temp_dir().join(format!("temu_compact_store_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Seed three real records, then inflate the file with duplicates far
    // past the dead-fraction threshold, plus a torn tail.
    let seed = ResultCache::with_store(&path).unwrap();
    let sweep = || {
        Sweep::new("compact", tiny()).workloads(vec![tiny_matrix(1), tiny_matrix(2), tiny_matrix(3)])
    };
    assert!(sweep().run_cached(&seed).all_ok());
    drop(seed);

    let content = std::fs::read_to_string(&path).unwrap();
    let records: Vec<&str> = content.lines().filter(|l| l.starts_with("{\"key\"")).collect();
    assert_eq!(records.len(), 3);
    let mut dirty = content.clone();
    for _ in 0..40 {
        for r in &records {
            dirty.push_str(r);
            dirty.push('\n');
        }
    }
    dirty.push_str("torn junk without a newline");
    std::fs::write(&path, &dirty).unwrap();
    let dirty_len = std::fs::metadata(&path).unwrap().len();

    // Loading compacts: the file shrinks back to header + 3 unique
    // records, and the cache still answers every original content key.
    let compacted = ResultCache::with_store(&path).unwrap();
    assert_eq!(compacted.len(), 3);
    let clean = std::fs::read_to_string(&path).unwrap();
    assert!(std::fs::metadata(&path).unwrap().len() < dirty_len / 10, "compaction shrinks the file");
    assert_eq!(clean.lines().count(), 4, "header + one line per unique key");
    assert!(clean.lines().next().unwrap().starts_with("{\"temu_store\": 1"));
    let rerun = sweep().run_cached(&compacted);
    assert_eq!((rerun.cache_hits, rerun.executed), (3, 0), "identical content keys round-trip");
    drop(compacted);

    // Reloading the compacted store is stable: nothing dead, no rewrite.
    let reloaded = ResultCache::with_store(&path).unwrap();
    assert_eq!(reloaded.len(), 3);
    assert_eq!(std::fs::read_to_string(&path).unwrap(), clean);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn sibling_cache_handles_see_each_others_appends_via_refresh() {
    // Two independent ResultCache instances sharing one store file — the
    // fleet's members-behind-one-store topology. A miss in one handle
    // picks up what the other appended since its last read.
    let path = std::env::temp_dir().join(format!("temu_shared_store_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let a = ResultCache::with_store(&path).unwrap();
    let b = ResultCache::with_store(&path).unwrap();

    let sweep = || Sweep::new("shared", tiny()).workloads(vec![tiny_matrix(1), tiny_matrix(2)]);
    assert!(sweep().run_cached(&a).all_ok());
    assert_eq!(a.len(), 2);
    assert_eq!(b.len(), 0, "b has not looked yet");

    let rerun = sweep().run_cached(&b);
    assert_eq!((rerun.cache_hits, rerun.executed), (2, 0), "b misses, refreshes, and hits a's records");
    assert_eq!(b.len(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn bad_grid_point_is_contained_and_never_cached() {
    let cache = ResultCache::in_memory();
    let sweep = || {
        Sweep::new("bands", tiny())
            .dfs_bands(&[(301.0, 300.5), (300.5, 301.0)], 500_000_000, 100_000_000)
    };
    let report = sweep().run_cached(&cache);
    assert_eq!(report.points.len(), 2);
    assert_eq!(report.n_failed(), 1);
    assert!(report.points[0].is_ok(), "the valid band runs");
    match &report.points[1].outcome {
        Err(TemuError::Platform(PlatformError::DfsLadder { .. })) => {}
        other => panic!("inverted band must be a typed platform error, got {other:?}"),
    }
    assert_eq!(report.executed, 1, "the malformed point never reaches the campaign");
    assert_eq!(cache.len(), 1, "failures are not cached");
    // The report row for the failure carries the error in CSV and JSON,
    // and failed rows stay aligned with the header's 17 columns (none of
    // these rows contain quoted fields, so a plain comma count is exact).
    let csv = report.to_csv();
    assert!(csv.contains("DFS ladder"));
    let header_cols = csv.lines().next().unwrap().matches(',').count();
    for line in csv.lines().skip(1) {
        assert!(!line.contains('"'), "field-count check requires unquoted rows: {line}");
        assert_eq!(line.matches(',').count(), header_cols, "row misaligned: {line}");
    }
    assert!(report.to_json().contains("\"ok\": false"));

    // Re-running: the good point hits the cache, the bad one fails again.
    let rerun = sweep().run_cached(&cache);
    assert_eq!(rerun.executed, 0);
    assert_eq!(rerun.cache_hits, 1);
    assert_eq!(rerun.n_failed(), 1);
}

#[test]
fn hundred_point_sweep_streams_progress_and_reruns_from_cache() {
    // The acceptance grid: 5 workloads × 5 DFS bands × 2 solvers × 2 run
    // budgets = 100 points, every scenario deliberately tiny.
    let cache = ResultCache::in_memory();
    let build = || {
        Sweep::new("grid100", tiny())
            .workloads((1..=5).map(tiny_matrix).collect())
            .dfs_bands(
                &[(340.0, 330.0), (345.0, 335.0), (350.0, 340.0), (355.0, 345.0), (360.0, 350.0)],
                500_000_000,
                100_000_000,
            )
            .implicit_solves(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid])
            .windows(&[1, 2])
            .threads(2)
    };

    type ProgressLog = Arc<Mutex<Vec<(usize, usize, bool, bool)>>>;
    let events: ProgressLog = Arc::new(Mutex::new(Vec::new()));
    let log = Arc::clone(&events);
    let report = build()
        .on_progress(move |p| {
            assert_eq!(p.total, 100);
            log.lock().unwrap().push((p.completed, p.index, p.cache_hit, p.outcome.is_ok()));
        })
        .run_cached(&cache);

    assert_eq!(report.points.len(), 100);
    assert!(report.all_ok(), "{}", report.to_json());
    assert_eq!(report.executed, 100);
    assert_eq!(report.cache_hits, 0);

    // Streaming: one event per point, `completed` counting 1..=100 in call
    // order, every grid index delivered exactly once.
    let streamed = events.lock().unwrap();
    assert_eq!(streamed.len(), 100);
    assert_eq!(streamed.iter().map(|e| e.0).collect::<Vec<_>>(), (1..=100).collect::<Vec<_>>());
    let mut indices: Vec<usize> = streamed.iter().map(|e| e.1).collect();
    indices.sort_unstable();
    assert_eq!(indices, (0..100).collect::<Vec<_>>());
    assert!(streamed.iter().all(|e| !e.2 && e.3), "first run: no cache hits, no failures");
    drop(streamed);

    // The identical sweep re-run: 100% cache hits, zero executions.
    let hits = Arc::new(AtomicUsize::new(0));
    let hit_counter = Arc::clone(&hits);
    let rerun = build()
        .on_progress(move |p| {
            assert!(p.cache_hit, "rerun point {} must be cached", p.label);
            hit_counter.fetch_add(1, Ordering::Relaxed);
        })
        .run_cached(&cache);
    assert_eq!(rerun.executed, 0, "identical 100-point rerun executes zero scenarios");
    assert_eq!(rerun.cache_hits, 100, "100% cache hits");
    assert_eq!(hits.load(Ordering::Relaxed), 100);
    assert!(rerun.all_ok());
    assert!(rerun.wall < report.wall, "a fully cached sweep is faster than the real one");

    // Exports: one CSV row per point plus the header.
    assert_eq!(rerun.to_csv().lines().count(), 101);
    assert!(rerun.to_json().contains("\"cache_hits\": 100"));
}

#[test]
fn checkpoint_hook_cancels_between_grid_points() {
    use temu_framework::{CheckpointDecision, SweepCheckpoint};

    // Six points, one thread: the hook runs before every point. Cancel
    // after two points executed.
    let cache = ResultCache::in_memory();
    let seen = Arc::new(Mutex::new(Vec::<SweepCheckpoint>::new()));
    let log = Arc::clone(&seen);
    let report = Sweep::new("cancelme", tiny())
        .workloads((1..=6).map(tiny_matrix).collect())
        .threads(1)
        .on_checkpoint(move |cp| {
            log.lock().unwrap().push(*cp);
            if cp.executed >= 2 {
                CheckpointDecision::Cancel
            } else {
                CheckpointDecision::Continue
            }
        })
        .run_cached(&cache);

    assert!(report.cancelled, "the hook's Cancel decision is recorded");
    assert_eq!(report.executed, 2, "no point starts after the Cancel decision");
    assert_eq!(report.n_cancelled(), 4);
    assert_eq!(report.n_failed(), 0, "cancelled points are not failures");
    assert!(!report.all_ok());
    assert_eq!(cache.len(), 2, "completed points stay cached");
    for (i, p) in report.points.iter().enumerate() {
        if i < 2 {
            assert!(p.is_ok());
        } else {
            assert!(matches!(p.outcome, Err(TemuError::Cancelled)), "point {i}: {:?}", p.outcome);
        }
    }
    // The hook saw monotonically increasing progress, one call per
    // batch boundary (3 calls: before points 0, 1, 2).
    let checkpoints = seen.lock().unwrap();
    assert_eq!(checkpoints.len(), 3);
    assert_eq!(checkpoints.iter().map(|c| c.executed).collect::<Vec<_>>(), vec![0, 1, 2]);
    assert!(checkpoints.iter().all(|c| c.total == 6));

    // Re-running without a hook resumes from the cache: the two completed
    // points are hits, the cancelled four execute now.
    let resume = Sweep::new("cancelme", tiny())
        .workloads((1..=6).map(tiny_matrix).collect())
        .threads(1)
        .run_cached(&cache);
    assert!(resume.all_ok());
    assert_eq!((resume.cache_hits, resume.executed), (2, 4), "a cancelled sweep resumes as cache hits");
    assert!(!resume.cancelled);
    assert!(resume.to_json().contains("\"cancelled\": false"));
}

#[test]
fn dfs_only_sweep_builds_the_mesh_exactly_once() {
    // Eight DFS-band points over one die: identical floorplan, mesh and
    // workload. The sweep-scoped artifact cache must build each of those
    // exactly once and serve the other seven points from the shared Arc.
    let bands: Vec<(f64, f64)> =
        (0..8).map(|i| (340.0 + i as f64 * 2.0, 330.0 + i as f64 * 2.0)).collect();
    let report = Sweep::new("dfs-only", tiny())
        .dfs_bands(&bands, 500_000_000, 100_000_000)
        .threads(1)
        .run();
    assert!(report.all_ok(), "{}", report.to_json());
    assert_eq!(report.executed, 8);
    let a = report.artifacts;
    assert_eq!((a.floorplan_misses, a.floorplan_hits), (1, 7), "one floorplan derivation");
    assert_eq!((a.mesh_misses, a.mesh_hits), (1, 7), "one mesh build for eight points");
    assert_eq!((a.program_misses, a.program_hits), (1, 7), "one workload compilation");
    assert_eq!(a.operator_misses, 0, "tiny mesh never engages the multigrid hierarchy");
    assert!(report.to_json().contains("\"mesh_misses\": 1"));

    // A second sweep injected with a shared cross-sweep cache re-uses the
    // first sweep's artifacts outright, and the report's stats stay scoped
    // to that sweep's own window of use.
    let shared = Arc::new(temu_framework::ArtifactCache::new());
    let warm = Sweep::new("warmup", tiny())
        .dfs_bands(&bands[..2], 500_000_000, 100_000_000)
        .threads(1)
        .artifacts(Arc::clone(&shared))
        .run();
    assert_eq!((warm.artifacts.mesh_misses, warm.artifacts.mesh_hits), (1, 1));
    let reuse = Sweep::new("reuse", tiny())
        .dfs_bands(&bands[2..], 500_000_000, 100_000_000)
        .threads(1)
        .artifacts(shared)
        .run();
    assert_eq!(
        (reuse.artifacts.mesh_misses, reuse.artifacts.mesh_hits),
        (0, 6),
        "a shared cache carries the mesh across sweeps"
    );
}

#[test]
fn batched_sweep_matches_the_campaign_path_exactly() {
    // The same grid through both execution paths: batch(true) fuses
    // shared-operator points into lockstep groups solved by the many-RHS
    // kernel; batch(false) runs each point alone through the campaign
    // pool. The kernel is bitwise-identical to sequential stepping, so
    // every result field must match exactly — only wall time may differ.
    let build = || {
        Sweep::new("paths", tiny())
            .workloads((1..=3).map(tiny_matrix).collect())
            .dfs_bands(&[(340.0, 330.0), (350.0, 340.0)], 500_000_000, 100_000_000)
            .windows(&[1, 2])
            .threads(1)
    };
    let sequential = build().batch(false).run();
    let batched = build().batch(true).run();
    assert!(sequential.all_ok(), "{}", sequential.to_json());
    assert!(batched.all_ok(), "{}", batched.to_json());
    assert_eq!(batched.executed, 12);
    // Twelve points, one geometry: the batched path still builds one mesh.
    assert_eq!((batched.artifacts.mesh_misses, batched.artifacts.mesh_hits), (1, 11));

    for (a, b) in sequential.points.iter().zip(&batched.points) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.key, b.key);
        let (x, y) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(x.windows, y.windows);
        assert_eq!(x.instructions, y.instructions);
        assert_eq!(x.all_halted, y.all_halted);
        assert_eq!(x.virtual_s.to_bits(), y.virtual_s.to_bits());
        assert_eq!(x.fpga_s.to_bits(), y.fpga_s.to_bits());
        assert_eq!(
            x.peak_temp_k.map(f64::to_bits),
            y.peak_temp_k.map(f64::to_bits),
            "{}: batched peak temperature must be bitwise-identical",
            a.label
        );
        assert_eq!(x.final_temp_k.map(f64::to_bits), y.final_temp_k.map(f64::to_bits));
        assert_eq!(x.throttled_fraction.to_bits(), y.throttled_fraction.to_bits());
        assert_eq!(x.time_at_hz, y.time_at_hz);
        assert_eq!(x.unconverged_substeps, y.unconverged_substeps);
    }
}

#[test]
fn batched_sweep_serves_reruns_from_the_result_cache() {
    // The batch path sits behind the same content-keyed result cache as
    // the campaign path: a batched first run fills the cache, and either
    // path replays it without executing (or building) anything.
    let cache = ResultCache::in_memory();
    let build = || {
        Sweep::new("batch-cached", tiny())
            .workloads(vec![tiny_matrix(1), tiny_matrix(2)])
            .windows(&[1, 2])
            .batch(true)
    };
    let first = build().run_cached(&cache);
    assert!(first.all_ok(), "{}", first.to_json());
    assert_eq!((first.executed, first.cache_hits), (4, 0));
    assert_eq!(cache.len(), 4);

    let rerun = build().run_cached(&cache);
    assert_eq!((rerun.executed, rerun.cache_hits), (0, 4));
    assert_eq!(rerun.artifacts.mesh_misses, 0, "a fully cached rerun builds nothing");
    for (a, b) in first.points.iter().zip(&rerun.points) {
        assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
}

#[test]
fn fully_cached_sweep_never_checkpoints() {
    let cache = ResultCache::in_memory();
    let build = || Sweep::new("warm", tiny()).workloads(vec![tiny_matrix(1), tiny_matrix(2)]).threads(1);
    assert!(build().run_cached(&cache).all_ok());
    let calls = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&calls);
    let rerun = build()
        .on_checkpoint(move |_| {
            counter.fetch_add(1, Ordering::Relaxed);
            temu_framework::CheckpointDecision::Cancel
        })
        .run_cached(&cache);
    assert_eq!(rerun.cache_hits, 2);
    assert!(!rerun.cancelled, "nothing to execute, nothing to cancel");
    assert_eq!(calls.load(Ordering::Relaxed), 0, "the hook only runs when points execute");
}

/// Every [`PointSummary`] field except wall time, compared bitwise — the
/// checkpoint/resume invariant (wall clock is the one thing a restart
/// legitimately changes).
fn assert_summary_bitwise_eq(x: &temu_framework::PointSummary, y: &temu_framework::PointSummary) {
    assert_eq!(x.windows, y.windows);
    assert_eq!(x.virtual_s.to_bits(), y.virtual_s.to_bits());
    assert_eq!(x.fpga_s.to_bits(), y.fpga_s.to_bits());
    assert_eq!(x.all_halted, y.all_halted);
    assert_eq!(x.instructions, y.instructions);
    assert_eq!(x.peak_temp_k.map(f64::to_bits), y.peak_temp_k.map(f64::to_bits));
    assert_eq!(x.final_temp_k.map(f64::to_bits), y.final_temp_k.map(f64::to_bits));
    assert_eq!(x.throttled_fraction.to_bits(), y.throttled_fraction.to_bits());
    assert_eq!(x.time_at_hz.len(), y.time_at_hz.len());
    for ((ha, ta), (hb, tb)) in x.time_at_hz.iter().zip(&y.time_at_hz) {
        assert_eq!(ha, hb);
        assert_eq!(ta.to_bits(), tb.to_bits());
    }
    assert_eq!(x.unconverged_substeps, y.unconverged_substeps);
    assert_eq!(x.worst_residual_k.to_bits(), y.worst_residual_k.to_bits());
}

#[test]
fn window_checkpoint_hook_sees_boundaries_and_cancels_mid_point() {
    use temu_framework::CheckpointDecision;

    // Two 6-window points, hook every 2 windows: boundaries at 2 and 4
    // (never the final window). Cancel the second point at window 4.
    let build = || {
        Sweep::new("winck", tiny())
            .workloads(vec![tiny_matrix(1), tiny_matrix(2)])
            .windows(&[6])
            .threads(1)
    };
    let target = build().expand()[1].key.unwrap();
    let seen = Arc::new(Mutex::new(Vec::<(usize, u64, u64, u64, u64)>::new()));
    let log = Arc::clone(&seen);
    let report = build()
        .on_window_checkpoint(2, move |cp| {
            log.lock().unwrap().push((
                cp.index,
                cp.key,
                cp.windows,
                cp.total_windows,
                cp.state.scenario_key(),
            ));
            if cp.key == target && cp.windows >= 4 {
                CheckpointDecision::Cancel
            } else {
                CheckpointDecision::Continue
            }
        })
        .run();

    assert!(!report.cancelled, "a mid-point cancel stops one point, not the sweep");
    assert!(report.points[0].is_ok(), "{:?}", report.points[0].outcome);
    match &report.points[1].outcome {
        Err(TemuError::CancelledMidPoint { windows }) => {
            assert_eq!(*windows, 4, "the error reports how far the point got");
        }
        other => panic!("expected CancelledMidPoint, got {other:?}"),
    }

    let seen = seen.lock().unwrap();
    // Point 0 checkpoints at 2 and 4; point 1 at 2, then 4 where it dies.
    assert_eq!(seen.len(), 4, "{seen:?}");
    for (index, key, windows, total, state_key) in seen.iter() {
        assert!(*windows == 2 || *windows == 4, "boundaries every 2, never the final window");
        assert_eq!(*total, 6);
        assert_eq!(key, state_key, "the delivered state is bound to the point's scenario");
        assert!(*index < 2);
    }
}

#[test]
fn seeded_resume_continues_a_sweep_point_bitwise() {
    use temu_framework::{CheckpointDecision, EmulationState};

    let build = || {
        Sweep::new("resume", tiny())
            .workloads(vec![tiny_matrix(1), tiny_matrix(2)])
            .windows(&[6])
            .threads(1)
    };
    let uninterrupted = build().run();
    assert!(uninterrupted.all_ok(), "{}", uninterrupted.to_json());

    // Interrupt point 1 at window 4, persisting the boundary's state via
    // the serialized byte stream — exactly what a journal would store.
    let target = build().expand()[1].key.unwrap();
    let saved = Arc::new(Mutex::new(Vec::<u8>::new()));
    let sink = Arc::clone(&saved);
    let interrupted = build()
        .on_window_checkpoint(2, move |cp| {
            if cp.key == target && cp.windows == 4 {
                *sink.lock().unwrap() = cp.state.to_bytes();
                CheckpointDecision::Cancel
            } else {
                CheckpointDecision::Continue
            }
        })
        .run();
    assert!(matches!(
        interrupted.points[1].outcome,
        Err(TemuError::CancelledMidPoint { windows: 4 })
    ));

    // Resume: the seeded point continues from window 4 instead of
    // restarting, and its summary is bitwise-identical to the
    // uninterrupted run (wall clock excepted).
    let bytes = saved.lock().unwrap().clone();
    assert!(!bytes.is_empty(), "the hook persisted the checkpoint");
    let state = EmulationState::from_bytes(&bytes).unwrap();
    assert_eq!(state.scenario_key(), target);
    assert_eq!(state.windows(), 4);
    let resumed = build().resume_point(state).run();
    assert!(resumed.all_ok(), "{}", resumed.to_json());
    for (a, b) in uninterrupted.points.iter().zip(&resumed.points) {
        assert_eq!(a.key, b.key);
        assert_summary_bitwise_eq(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
    }
}

#[test]
fn disabled_window_checkpointing_never_captures_state() {
    // `every = 0` (the serve CLI's off position) must not install the
    // custom runner at all — the default execution path runs untouched.
    let report = Sweep::new("off", tiny())
        .workloads(vec![tiny_matrix(1), tiny_matrix(2)])
        .windows(&[4])
        .threads(1)
        .on_window_checkpoint(0, |_| panic!("hook must never fire when disabled"))
        .run();
    assert!(report.all_ok(), "{}", report.to_json());
    assert_eq!(report.executed, 2);
}
