//! The Virtual Platform Clock Manager (§4.2) and the §7 DFS policy.
//!
//! The VPCM relates **virtual cycles** (the emulated MPSoC's clock) to
//! **physical FPGA time**. On the paper's board every virtual cycle costs one
//! 100 MHz physical cycle, plus *freeze* cycles whenever
//!
//! * a physically slower device (DDR standing in for an emulated low-latency
//!   memory) needs extra physical cycles the emulated platform must not see, or
//! * the Ethernet statistics link congests and the extraction buffer must be
//!   drained before emulation may proceed.
//!
//! Virtual-frequency scaling is what lets the 100 MHz FPGA emulate a 500 MHz
//! MPSoC: a 10 ms virtual sampling window at 500 MHz is 5 M virtual cycles,
//! i.e. 50 ms of physical execution — the thermal model is still fed 10 ms
//! windows. The dual-threshold [`DfsPolicy`] reproduces the run-time thermal
//! manager of §7 (500 MHz above 350 K → 100 MHz until back under 340 K).

/// Virtual-clock bookkeeping for one platform.
#[derive(Clone, Copy, Debug)]
pub struct Vpcm {
    /// Physical FPGA clock in Hz.
    pub fpga_hz: u64,
    virtual_hz: u64,
    freeze_mem: u64,
    freeze_link: u64,
}

impl Vpcm {
    /// Creates a VPCM with the given physical and initial virtual frequency.
    pub fn new(fpga_hz: u64, virtual_hz: u64) -> Vpcm {
        assert!(fpga_hz > 0 && virtual_hz > 0, "clock frequencies must be nonzero");
        Vpcm { fpga_hz, virtual_hz, freeze_mem: 0, freeze_link: 0 }
    }

    /// Current virtual (emulated) frequency in Hz.
    pub fn virtual_hz(&self) -> u64 {
        self.virtual_hz
    }

    /// Retunes the virtual clock (the DFS actuator).
    pub fn set_virtual_hz(&mut self, hz: u64) {
        assert!(hz > 0, "virtual frequency must be nonzero");
        self.virtual_hz = hz;
    }

    /// Virtual cycles in `seconds` of emulated time at the current frequency.
    pub fn cycles_in(&self, seconds: f64) -> u64 {
        (seconds * self.virtual_hz as f64).round() as u64
    }

    /// Emulated seconds represented by `cycles` virtual cycles at the current
    /// frequency.
    pub fn virtual_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.virtual_hz as f64
    }

    /// Records physical freeze cycles caused by slow memory devices.
    pub fn record_mem_freeze(&mut self, cycles: u64) {
        self.freeze_mem += cycles;
    }

    /// Records physical freeze cycles caused by statistics-link congestion.
    pub fn record_link_freeze(&mut self, cycles: u64) {
        self.freeze_link += cycles;
    }

    /// Freeze cycles accumulated since the last [`Vpcm::take_freezes`]
    /// (memory-induced, link-induced).
    pub fn freezes(&self) -> (u64, u64) {
        (self.freeze_mem, self.freeze_link)
    }

    /// Returns and resets the freeze counters.
    pub fn take_freezes(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.freeze_mem), std::mem::take(&mut self.freeze_link))
    }

    /// Physical FPGA seconds needed to emulate `virtual_cycles` given the
    /// currently accumulated freezes: `(virtual + frozen) / fpga_hz`.
    ///
    /// This is the quantity the paper's Table 3 reports for the HW emulator.
    pub fn fpga_seconds(&self, virtual_cycles: u64) -> f64 {
        (virtual_cycles + self.freeze_mem + self.freeze_link) as f64 / self.fpga_hz as f64
    }
}

/// The §7 run-time thermal-management policy: "a simple dual-state machine
/// that monitors at run-time if the temperature of each MPSoC component
/// increases/decreases above/below two certain thresholds (350 or 340
/// degrees Kelvin). Then the temperature sensors inform the VPCM, which
/// performs dynamic frequency scaling choosing 500 or 100 MHz accordingly."
#[derive(Clone, Copy, Debug)]
pub struct DfsPolicy {
    /// Switch to `low_hz` when any sensor exceeds this temperature (K).
    pub hot_threshold_k: f64,
    /// Switch back to `high_hz` when all sensors drop below this (K).
    pub cool_threshold_k: f64,
    /// Fast clock (Hz).
    pub high_hz: u64,
    /// Throttled clock (Hz).
    pub low_hz: u64,
    throttled: bool,
}

impl DfsPolicy {
    /// The paper's exact policy: 350 K / 340 K thresholds, 500/100 MHz.
    pub fn paper() -> DfsPolicy {
        DfsPolicy::new(350.0, 340.0, 500_000_000, 100_000_000)
    }

    /// Creates a policy with custom thresholds and frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `cool_threshold_k >= hot_threshold_k` (the hysteresis band
    /// would be empty or inverted).
    pub fn new(hot_threshold_k: f64, cool_threshold_k: f64, high_hz: u64, low_hz: u64) -> DfsPolicy {
        assert!(cool_threshold_k < hot_threshold_k, "cool threshold must sit below hot threshold");
        DfsPolicy { hot_threshold_k, cool_threshold_k, high_hz, low_hz, throttled: false }
    }

    /// Whether the policy currently holds the platform at the low frequency.
    pub fn is_throttled(&self) -> bool {
        self.throttled
    }

    /// Feeds the hottest sensor temperature and returns the frequency the
    /// platform should run at for the next window.
    pub fn update(&mut self, max_temp_k: f64) -> u64 {
        if self.throttled {
            if max_temp_k < self.cool_threshold_k {
                self.throttled = false;
            }
        } else if max_temp_k > self.hot_threshold_k {
            self.throttled = true;
        }
        if self.throttled {
            self.low_hz
        } else {
            self.high_hz
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_and_seconds_round_trip() {
        let v = Vpcm::new(100_000_000, 500_000_000);
        assert_eq!(v.cycles_in(0.010), 5_000_000);
        assert!((v.virtual_seconds(5_000_000) - 0.010).abs() < 1e-12);
    }

    #[test]
    fn fpga_time_includes_freezes() {
        let mut v = Vpcm::new(100_000_000, 500_000_000);
        assert!((v.fpga_seconds(5_000_000) - 0.05).abs() < 1e-12, "5M cycles at 100MHz physical");
        v.record_mem_freeze(1_000_000);
        v.record_link_freeze(500_000);
        assert!((v.fpga_seconds(5_000_000) - 0.065).abs() < 1e-12);
        assert_eq!(v.take_freezes(), (1_000_000, 500_000));
        assert_eq!(v.freezes(), (0, 0));
    }

    #[test]
    fn dfs_retunes() {
        let mut v = Vpcm::new(100_000_000, 500_000_000);
        v.set_virtual_hz(100_000_000);
        assert_eq!(v.virtual_hz(), 100_000_000);
        assert_eq!(v.cycles_in(0.01), 1_000_000);
    }

    #[test]
    fn dfs_policy_hysteresis() {
        let mut p = DfsPolicy::paper();
        assert_eq!(p.update(300.0), 500_000_000, "cool: full speed");
        assert_eq!(p.update(349.9), 500_000_000, "below hot threshold");
        assert_eq!(p.update(350.1), 100_000_000, "crossed 350K: throttle");
        assert!(p.is_throttled());
        assert_eq!(p.update(345.0), 100_000_000, "inside hysteresis band: stay throttled");
        assert_eq!(p.update(339.9), 500_000_000, "cooled under 340K: full speed");
        assert!(!p.is_throttled());
    }

    #[test]
    #[should_panic(expected = "cool threshold")]
    fn inverted_thresholds_panic() {
        let _ = DfsPolicy::new(340.0, 350.0, 1, 1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_clock_panics() {
        let _ = Vpcm::new(0, 1);
    }
}
