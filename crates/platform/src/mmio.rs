//! The memory-mapped I/O window of the emulated platform.
//!
//! The paper memory-maps the HW sniffers into the processors' address range
//! so software can (de)activate them at run time (§4.1), and the VPCM feeds
//! temperature-sensor values back to the platform (§4.2). The window also
//! carries the conveniences any multi-core runtime needs: core id, core
//! count, a per-core debug console and the current DFS frequency.

use temu_state::{StateError, StateReader, StateWriter};

/// Offset of the read-only core-id register.
pub const MMIO_CORE_ID: u32 = 0x00;
/// Offset of the write-only console register (one byte per store).
pub const MMIO_CONSOLE: u32 = 0x04;
/// Offset of the read-only core-count register.
pub const MMIO_NCORES: u32 = 0x08;
/// Offset of the read-only current virtual frequency in MHz (DFS output).
pub const MMIO_FREQ_MHZ: u32 = 0x0C;
/// Offset of the low word of the core's local cycle counter.
pub const MMIO_CYCLE_LO: u32 = 0x10;
/// Offset of the high word of the core's local cycle counter.
pub const MMIO_CYCLE_HI: u32 = 0x14;
/// Offset of the sniffer enable register (bit 0: all sniffers).
pub const MMIO_SNIFFER_CTRL: u32 = 0x20;
/// Base offset of the temperature-sensor registers (one word per floorplan
/// component, value in centi-kelvin).
pub const MMIO_SENSOR_BASE: u32 = 0x40;

/// Number of sensor registers available.
pub const MMIO_SENSORS: usize = 48;

/// MMIO register state shared by all cores of the platform.
#[derive(Clone, Debug)]
pub struct Mmio {
    ncores: usize,
    consoles: Vec<Vec<u8>>,
    sensors_centi_k: Vec<u32>,
    sniffers_enabled: bool,
    freq_mhz: u32,
}

impl Mmio {
    /// Creates the window for `ncores` cores with sniffers enabled and an
    /// ambient 300.00 K on every sensor.
    pub fn new(ncores: usize, initial_freq_mhz: u32) -> Mmio {
        Mmio {
            ncores,
            consoles: vec![Vec::new(); ncores],
            sensors_centi_k: vec![30_000; MMIO_SENSORS],
            sniffers_enabled: true,
            freq_mhz: initial_freq_mhz,
        }
    }

    /// Whether software left the sniffers enabled.
    pub fn sniffers_enabled(&self) -> bool {
        self.sniffers_enabled
    }

    /// Bytes written by `core` to its console register.
    pub fn console(&self, core: usize) -> &[u8] {
        &self.consoles[core]
    }

    /// Updates the temperature sensor of floorplan component `i`
    /// (kelvin, stored as centi-kelvin).
    pub fn set_sensor_kelvin(&mut self, i: usize, kelvin: f64) {
        if i < self.sensors_centi_k.len() {
            self.sensors_centi_k[i] = (kelvin * 100.0).round().max(0.0) as u32;
        }
    }

    /// Current sensor value of component `i` in kelvin.
    pub fn sensor_kelvin(&self, i: usize) -> f64 {
        f64::from(self.sensors_centi_k[i]) / 100.0
    }

    /// Publishes the DFS frequency so software can read it.
    pub fn set_freq_mhz(&mut self, mhz: u32) {
        self.freq_mhz = mhz;
    }

    /// Handles a read by `core` at byte offset `off` (core-local cycle
    /// counter value supplied by the engine). Unknown offsets read zero.
    pub fn read(&self, core: usize, off: u32, cycle: u64) -> u32 {
        match off {
            MMIO_CORE_ID => core as u32,
            MMIO_CONSOLE => 0,
            MMIO_NCORES => self.ncores as u32,
            MMIO_FREQ_MHZ => self.freq_mhz,
            MMIO_CYCLE_LO => cycle as u32,
            MMIO_CYCLE_HI => (cycle >> 32) as u32,
            MMIO_SNIFFER_CTRL => u32::from(self.sniffers_enabled),
            o if o >= MMIO_SENSOR_BASE && o < MMIO_SENSOR_BASE + 4 * MMIO_SENSORS as u32 => {
                self.sensors_centi_k[((o - MMIO_SENSOR_BASE) / 4) as usize]
            }
            _ => 0,
        }
    }

    /// Handles a write by `core` at byte offset `off`. Unknown offsets are
    /// ignored (write-ignored semantics, as on the real platform).
    pub fn write(&mut self, core: usize, off: u32, value: u32) {
        match off {
            MMIO_CONSOLE => self.consoles[core].push(value as u8),
            MMIO_SNIFFER_CTRL => self.sniffers_enabled = value & 1 != 0,
            _ => {}
        }
    }

    /// Serializes the register state (consoles, sensors, control bits).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.consoles.len());
        for c in &self.consoles {
            w.bytes(c);
        }
        w.u32_slice(&self.sensors_centi_k);
        w.bool(self.sniffers_enabled);
        w.u32(self.freq_mhz);
    }

    /// Restores state saved by [`Mmio::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if the recorded core or sensor
    /// count differs from this window's.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let ncons = r.usize()?;
        if ncons != self.consoles.len() {
            return Err(StateError::BadLength { found: ncons as u64, max: self.consoles.len() as u64 });
        }
        for c in &mut self.consoles {
            *c = r.bytes()?;
        }
        let sensors = r.u32_vec()?;
        if sensors.len() != self.sensors_centi_k.len() {
            return Err(StateError::BadLength {
                found: sensors.len() as u64,
                max: self.sensors_centi_k.len() as u64,
            });
        }
        self.sensors_centi_k = sensors;
        self.sniffers_enabled = r.bool()?;
        self.freq_mhz = r.u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_and_ncores() {
        let m = Mmio::new(4, 100);
        assert_eq!(m.read(2, MMIO_CORE_ID, 0), 2);
        assert_eq!(m.read(0, MMIO_NCORES, 0), 4);
    }

    #[test]
    fn console_collects_bytes() {
        let mut m = Mmio::new(2, 100);
        for b in b"hi" {
            m.write(1, MMIO_CONSOLE, u32::from(*b));
        }
        assert_eq!(m.console(1), b"hi");
        assert_eq!(m.console(0), b"");
    }

    #[test]
    fn cycle_counter_split() {
        let m = Mmio::new(1, 100);
        let c = 0x1_2345_6789u64;
        assert_eq!(m.read(0, MMIO_CYCLE_LO, c), 0x2345_6789);
        assert_eq!(m.read(0, MMIO_CYCLE_HI, c), 1);
    }

    #[test]
    fn sniffer_control_round_trip() {
        let mut m = Mmio::new(1, 100);
        assert_eq!(m.read(0, MMIO_SNIFFER_CTRL, 0), 1);
        m.write(0, MMIO_SNIFFER_CTRL, 0);
        assert!(!m.sniffers_enabled());
        m.write(0, MMIO_SNIFFER_CTRL, 3);
        assert!(m.sniffers_enabled());
    }

    #[test]
    fn sensors_round_trip_kelvin() {
        let mut m = Mmio::new(1, 100);
        m.set_sensor_kelvin(3, 351.27);
        assert_eq!(m.read(0, MMIO_SENSOR_BASE + 12, 0), 35_127);
        assert!((m.sensor_kelvin(3) - 351.27).abs() < 0.005);
        m.set_sensor_kelvin(999, 400.0); // out of range: ignored
    }

    #[test]
    fn freq_register() {
        let mut m = Mmio::new(1, 500);
        assert_eq!(m.read(0, MMIO_FREQ_MHZ, 0), 500);
        m.set_freq_mhz(100);
        assert_eq!(m.read(0, MMIO_FREQ_MHZ, 0), 100);
    }

    #[test]
    fn unknown_offsets_are_benign() {
        let mut m = Mmio::new(1, 100);
        assert_eq!(m.read(0, 0xFFC, 0), 0);
        m.write(0, 0xFFC, 7);
    }
}
