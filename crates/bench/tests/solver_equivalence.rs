//! Golden-trajectory regression: the optimized CSR/colored solver must
//! reproduce the seed-faithful reference solver on the Fig. 4b ARM11
//! floorplan to within 1e-4 K over a 2 s heating transient, for both
//! integrators. This is the contract that lets every later perf change be
//! judged purely on speed.

use temu_power::floorplans::fig4b_arm11;
use temu_thermal::{GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalModel};

fn model(integrator: Integrator, sweep: SweepMode) -> ThermalModel {
    model_with(integrator, sweep, ImplicitSolve::Auto)
}

fn model_with(integrator: Integrator, sweep: SweepMode, solve: ImplicitSolve) -> ThermalModel {
    let map = fig4b_arm11();
    let cfg = GridConfig { integrator, sweep, implicit_solve: solve, ..GridConfig::default() };
    let mut m = ThermalModel::new(&map.floorplan, &cfg).unwrap();
    // Asymmetric load: cores hot, one core hotter — exercises lateral
    // gradients, not just the 1-D stack.
    for (i, &(p, _, _, _)) in map.cores.iter().enumerate() {
        m.set_component_power(p, if i == 0 { 1.8 } else { 1.2 });
    }
    m
}

fn max_cell_diff(a: &ThermalModel, b: &ThermalModel) -> f64 {
    a.temps().iter().zip(b.temps()).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

#[test]
fn optimized_solver_matches_reference_on_fig4b_over_2s() {
    for integrator in [Integrator::SemiImplicit { dt: 5e-4 }, Integrator::Explicit] {
        let mut reference = model(integrator, SweepMode::Reference);
        let mut optimized = model(integrator, SweepMode::Auto);
        // 2 s transient in 10 ms sampling windows, drift checked throughout
        // (an error that grows and decays inside the run would hide from an
        // endpoint-only check).
        let mut worst = 0.0f64;
        for _ in 0..200 {
            reference.step(0.010);
            optimized.step(0.010);
            worst = worst.max(max_cell_diff(&reference, &optimized));
        }
        assert!(
            worst < 1e-4,
            "max |ΔT| {worst:.2e} K vs reference over 2 s ({integrator:?})"
        );
        assert!(reference.max_temp() > 310.0, "the die heated up ({integrator:?})");
        // Identical energy physics: both books balance to the same totals
        // within the trajectory tolerance.
        let rel = (reference.energy_out() - optimized.energy_out()).abs()
            / reference.energy_out().max(1e-12);
        assert!(rel < 1e-3, "energy-out drift {rel:.2e} ({integrator:?})");
    }
}

#[test]
fn multigrid_matches_gauss_seidel_on_fig4b_over_2s() {
    // The multigrid golden contract, mirroring the PR 1 reference test:
    // forced multigrid must track the plain Gauss–Seidel path within
    // 1e-4 K over the same 2 s Fig. 4b transient — both solve each
    // substep's linear system to the same tolerance, so the trajectories
    // may differ only by solver-tolerance noise. (`ImplicitSolve` only
    // affects the semi-implicit integrator; the explicit path is covered
    // by the reference test above, where the setting is a no-op.)
    let integrator = Integrator::SemiImplicit { dt: 5e-4 };
    let mut gs = model_with(integrator, SweepMode::Auto, ImplicitSolve::GaussSeidel);
    let mut mg = model_with(integrator, SweepMode::Auto, ImplicitSolve::Multigrid);
    assert!(mg.uses_multigrid() && !gs.uses_multigrid());
    let mut worst = 0.0f64;
    for _ in 0..200 {
        gs.step(0.010);
        mg.step(0.010);
        worst = worst.max(max_cell_diff(&gs, &mg));
    }
    assert!(worst < 1e-4, "max |ΔT| {worst:.2e} K multigrid vs Gauss-Seidel over 2 s");
    assert!(gs.max_temp() > 310.0, "the die heated up");
    // Every substep of both solvers converged (the mesh is paper-scale).
    assert_eq!(gs.solver_stats().unconverged_substeps, 0);
    assert_eq!(mg.solver_stats().unconverged_substeps, 0);
    assert!(mg.solver_stats().total_cycles > 0, "multigrid cycles were spent");
    let rel = (gs.energy_out() - mg.energy_out()).abs() / gs.energy_out().max(1e-12);
    assert!(rel < 1e-3, "energy-out drift {rel:.2e}");
}
