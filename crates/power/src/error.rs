//! Typed errors of the power/floorplan layer.

use std::error::Error;
use std::fmt;

/// Why a floorplan cannot serve a platform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PowerError {
    /// The floorplan has fewer processor tiles than the machine has cores.
    CoreTileMismatch {
        /// Processor tiles the floorplan provides.
        core_tiles: usize,
        /// Cores the platform wants to place.
        cores: usize,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::CoreTileMismatch { core_tiles, cores } => {
                write!(f, "floorplan has {core_tiles} core tiles but the machine has {cores} cores")
            }
        }
    }
}

impl Error for PowerError {}
