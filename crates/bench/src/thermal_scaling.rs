//! Thermal-solver scaling benchmark: substeps/second across mesh sizes,
//! integrators, sweep modes and implicit-solver strategies, tracked as
//! `BENCH_thermal.json` so the perf trajectory is visible across PRs.
//!
//! The mesh ladder refines the Fig. 4b ARM11 floorplan from the paper's
//! ~660-cell operating point (§5.2: "2 s of simulation on 660 cells in
//! 1.65 s") up to ~105k cells. Every rung measures the seed-faithful
//! [`SweepMode::Reference`] solver against the optimized serial and
//! threshold-resolved (`Auto`) paths, for both integrators; the
//! semi-implicit rungs additionally measure the multigrid solver (`mg`
//! rows) against the pinned-Gauss–Seidel rows.
//!
//! Convergence is part of the contract, not just speed: every case records
//! its `unconverged_substeps`, and the run **fails** if a multigrid case
//! accepted any unconverged substep — the silent 60-sweep-cap failure this
//! solver exists to kill stays loud forever.

use std::time::Instant;
use temu_power::floorplans::fig4b_arm11;
use temu_thermal::{GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalGrid, ThermalModel};

/// One measured (mesh × integrator × sweep mode × solver) point.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Mesh rung label.
    pub mesh: &'static str,
    /// Total cells.
    pub cells: usize,
    /// Resistive edges.
    pub edges: usize,
    /// Sweep colors of the mesh.
    pub colors: usize,
    /// `"semi_implicit"` or `"explicit"`.
    pub integrator: &'static str,
    /// `"reference"`, `"serial"`, `"auto"` or `"mg"`.
    pub sweep: &'static str,
    /// Implicit-solver strategy: `"gs"`, `"mg"`, or `"-"` for explicit.
    pub solver: &'static str,
    /// Whether the run actually used parallel sweeps.
    pub parallel_active: bool,
    /// 10 ms sampling windows executed.
    pub windows: u64,
    /// Integration substeps executed.
    pub substeps: u64,
    /// Wall-clock seconds consumed.
    pub wall_s: f64,
    /// The headline number: substeps per wall-clock second.
    pub substeps_per_s: f64,
    /// Mean fine-grid Gauss–Seidel sweeps per substep (0 for explicit).
    pub avg_sweeps: f64,
    /// Mean multigrid cycles per substep (0 off the multigrid path).
    pub avg_cycles: f64,
    /// Implicit substeps accepted unconverged over the whole model
    /// lifetime (warm-up included) — non-zero rows are measuring a solver
    /// that quietly stopped converging.
    pub unconverged: u64,
    /// Hottest cell at the end (sanity: finite, above ambient).
    pub max_temp_k: f64,
}

/// Build-artifact wall-time for one rung: the two artifacts the sweep
/// layer's [`temu_framework::ArtifactCache`] memoizes. These columns are
/// what the cache saves per hit, so the committed bench makes the value of
/// a mesh/operator cache hit visible at every mesh scale.
#[derive(Clone, Debug)]
pub struct MeshBuild {
    /// Mesh rung label.
    pub mesh: &'static str,
    /// xy tiles per layer.
    pub tiles: usize,
    /// Total cells.
    pub cells: usize,
    /// Milliseconds `ThermalGrid::build` took.
    pub mesh_build_ms: f64,
    /// Milliseconds `MgTopology::for_grid` (the multigrid hierarchy —
    /// coarse grids, interpolation stencils, coarse operators) took.
    pub hierarchy_build_ms: f64,
}

/// A full scaling run.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    /// Host CPU count (parallel speedups are bounded by this).
    pub host_cores: usize,
    /// Solver worker-pool size override, if `TEMU_THERMAL_THREADS` is set.
    pub threads_override: Option<usize>,
    /// Whether this was the reduced smoke run.
    pub smoke: bool,
    /// Per-combination measurements.
    pub cases: Vec<CaseResult>,
    /// Per-rung meshing times.
    pub builds: Vec<MeshBuild>,
}

/// The mesh ladder (label, refinement config). Smoke mode keeps the two
/// smallest rungs: the paper-scale mesh and the Criterion "fine" mesh.
pub fn mesh_ladder(smoke: bool) -> Vec<(&'static str, GridConfig)> {
    let ladder = vec![
        // ~640 cells: the paper's §5.2 real-time operating point.
        ("paper660", GridConfig { default_div: 2, hot_div: 3, filler_pitch_um: 2000.0, ..GridConfig::default() }),
        // ~1.5k cells: the Criterion bench's "fine" mesh — the acceptance
        // rung for speedup-vs-reference.
        ("criterion_fine", GridConfig { default_div: 3, hot_div: 6, filler_pitch_um: 700.0, ..GridConfig::default() }),
        // ~5.5k cells.
        ("xfine", GridConfig { default_div: 6, hot_div: 12, filler_pitch_um: 350.0, ..GridConfig::default() }),
        // ~20k cells: above the default parallel threshold.
        ("xxfine", GridConfig { default_div: 12, hot_div: 24, filler_pitch_um: 180.0, ..GridConfig::default() }),
        // ~46k cells (11.5k tiles): the rung where plain Gauss–Seidel used
        // to pin at the sweep cap.
        ("huge", GridConfig { default_div: 18, hot_div: 36, filler_pitch_um: 120.0, ..GridConfig::default() }),
        // ~105k cells: the multigrid headroom rung (the ROADMAP's "100k+
        // cell meshes" target).
        ("mega", GridConfig { default_div: 28, hot_div: 56, filler_pitch_um: 80.0, ..GridConfig::default() }),
    ];
    if smoke {
        ladder.into_iter().take(2).collect()
    } else {
        ladder
    }
}

fn integrators() -> [(&'static str, Integrator); 2] {
    [
        ("semi_implicit", Integrator::SemiImplicit { dt: 5e-4 }),
        ("explicit", Integrator::Explicit),
    ]
}

fn sweeps() -> [(&'static str, SweepMode); 3] {
    [
        ("reference", SweepMode::Reference),
        ("serial", SweepMode::Serial),
        ("auto", SweepMode::Auto),
    ]
}

fn measure_case(
    mesh: &'static str,
    cfg: &GridConfig,
    integrator: (&'static str, Integrator),
    sweep: (&'static str, SweepMode),
    solve: (&'static str, ImplicitSolve),
    budget_s: f64,
) -> CaseResult {
    let map = fig4b_arm11();
    let cfg =
        GridConfig { integrator: integrator.1, sweep: sweep.1, implicit_solve: solve.1, ..*cfg };
    let mut model = ThermalModel::new(&map.floorplan, &cfg).expect("meshes");
    for &(p, _, _, _) in &map.cores {
        model.set_component_power(p, 1.2);
    }
    // One warm-up window takes the model off the cold start (and fills the
    // warm-start/SOR state the steady loop runs with).
    model.step(0.010);
    let substeps0 = model.substeps_taken();
    let t0 = Instant::now();
    let mut windows = 0u64;
    let mut sweep_samples = 0.0f64;
    let mut cycle_samples = 0.0f64;
    loop {
        model.step(0.010);
        windows += 1;
        sweep_samples += model.last_sweep_count() as f64;
        cycle_samples += model.last_cycle_count() as f64;
        if t0.elapsed().as_secs_f64() >= budget_s {
            break;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let substeps = model.substeps_taken() - substeps0;
    let max_temp_k = model.max_temp();
    assert!(max_temp_k.is_finite(), "{mesh}/{}/{}: non-finite temperature", integrator.0, sweep.0);
    assert!(max_temp_k >= cfg.ambient_k - 1e-6, "{mesh}: below ambient");
    let implicit = integrator.0 == "semi_implicit";
    CaseResult {
        mesh,
        cells: model.grid().n_cells(),
        edges: model.grid().n_edges(),
        colors: model.grid().sweep_colors(),
        integrator: integrator.0,
        sweep: sweep.0,
        solver: if implicit { solve.0 } else { "-" },
        parallel_active: model.uses_parallel_sweeps(),
        windows,
        substeps,
        wall_s,
        substeps_per_s: substeps as f64 / wall_s,
        avg_sweeps: if implicit { sweep_samples / windows as f64 } else { 0.0 },
        avg_cycles: if implicit { cycle_samples / windows as f64 } else { 0.0 },
        unconverged: model.solver_stats().unconverged_substeps,
        max_temp_k,
    }
}

/// Runs the scaling sweep. `budget_s` bounds the wall time of each
/// (mesh × integrator × sweep × solver) measurement.
///
/// # Panics
///
/// Panics if any multigrid case accepted an unconverged substep — this is
/// the bench-side convergence gate (`--smoke` runs it too).
pub fn run(smoke: bool, budget_s: f64) -> ScalingReport {
    run_filtered(smoke, budget_s, None)
}

/// [`run`], optionally restricted to one mesh rung (the bin's `--mesh`
/// flag — for quick solver-tuning iterations on the big rungs).
///
/// # Panics
///
/// Panics if `only_mesh` names no rung of the (smoke-filtered) ladder — a
/// typo must not silently produce an empty report (which would both
/// clobber the committed `BENCH_thermal.json` and let the convergence
/// gate pass vacuously).
pub fn run_filtered(smoke: bool, budget_s: f64, only_mesh: Option<&str>) -> ScalingReport {
    if let Some(m) = only_mesh {
        assert!(
            mesh_ladder(smoke).iter().any(|(mesh, _)| *mesh == m),
            "no mesh rung named {m:?} in the {} ladder",
            if smoke { "smoke" } else { "full" },
        );
    }
    let mut cases = Vec::new();
    let mut builds = Vec::new();
    let map = fig4b_arm11();
    for (mesh, cfg) in mesh_ladder(smoke) {
        if only_mesh.is_some_and(|m| m != mesh) {
            continue;
        }
        let t0 = Instant::now();
        let grid = ThermalGrid::build(&map.floorplan, &cfg).expect("meshes");
        let mesh_build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _topo = temu_thermal::MgTopology::for_grid(&grid, &cfg);
        builds.push(MeshBuild {
            mesh,
            tiles: grid.n_tiles(),
            cells: grid.n_cells(),
            mesh_build_ms,
            hierarchy_build_ms: t1.elapsed().as_secs_f64() * 1e3,
        });
        for integrator in integrators() {
            // The gs rows pin Gauss–Seidel so the multigrid comparison
            // stays meaningful even where the library default (`Auto`)
            // would already pick multigrid for the mesh.
            for sweep in sweeps() {
                cases.push(measure_case(
                    mesh,
                    &cfg,
                    integrator,
                    sweep,
                    ("gs", ImplicitSolve::GaussSeidel),
                    budget_s,
                ));
            }
            if integrator.0 == "semi_implicit" {
                cases.push(measure_case(
                    mesh,
                    &cfg,
                    integrator,
                    ("mg", SweepMode::Auto),
                    ("mg", ImplicitSolve::Multigrid),
                    budget_s,
                ));
            }
        }
    }
    for c in &cases {
        assert!(
            c.solver != "mg" || c.unconverged == 0,
            "{}/{}: the multigrid solver accepted {} unconverged substeps",
            c.mesh,
            c.sweep,
            c.unconverged,
        );
    }
    ScalingReport {
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threads_override: std::env::var("TEMU_THERMAL_THREADS").ok().and_then(|v| v.parse().ok()),
        smoke,
        cases,
        builds,
    }
}

impl ScalingReport {
    /// Speedup of `sweep` over the reference solver on (`mesh`,
    /// `integrator`), when both were measured.
    pub fn speedup(&self, mesh: &str, integrator: &str, sweep: &str) -> Option<f64> {
        let find = |s: &str| {
            self.cases
                .iter()
                .find(|c| c.mesh == mesh && c.integrator == integrator && c.sweep == s)
                .map(|c| c.substeps_per_s)
        };
        Some(find(sweep)? / find("reference")?)
    }

    /// Serializes to the committed `BENCH_thermal.json` format.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"host_cores\": {},\n", self.host_cores));
        s.push_str(&format!(
            "  \"threads_override\": {},\n",
            self.threads_override.map_or("null".into(), |t| t.to_string())
        ));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str("  \"mesh_builds\": [\n");
        for (i, b) in self.builds.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"mesh\": \"{}\", \"tiles\": {}, \"cells\": {}, \
                 \"mesh_build_ms\": {:.3}, \"hierarchy_build_ms\": {:.3}}}{}\n",
                b.mesh,
                b.tiles,
                b.cells,
                b.mesh_build_ms,
                b.hierarchy_build_ms,
                if i + 1 < self.builds.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n  \"cases\": [\n");
        for (i, c) in self.cases.iter().enumerate() {
            let speedup = self
                .speedup(c.mesh, c.integrator, c.sweep)
                .map_or("null".into(), |v| format!("{v:.3}"));
            s.push_str(&format!(
                "    {{\"mesh\": \"{}\", \"cells\": {}, \"edges\": {}, \"colors\": {}, \
                 \"integrator\": \"{}\", \"sweep\": \"{}\", \"solver\": \"{}\", \
                 \"parallel_active\": {}, \
                 \"windows\": {}, \"substeps\": {}, \"wall_s\": {:.6}, \
                 \"substeps_per_s\": {:.1}, \"avg_sweeps\": {:.2}, \"avg_cycles\": {:.2}, \
                 \"unconverged_substeps\": {}, \"max_temp_k\": {:.3}, \
                 \"speedup_vs_reference\": {}}}{}\n",
                c.mesh,
                c.cells,
                c.edges,
                c.colors,
                c.integrator,
                c.sweep,
                c.solver,
                c.parallel_active,
                c.windows,
                c.substeps,
                c.wall_s,
                c.substeps_per_s,
                c.avg_sweeps,
                c.avg_cycles,
                c.unconverged,
                c.max_temp_k,
                speedup,
                if i + 1 < self.cases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_spans_paper_to_large() {
        let full = mesh_ladder(false);
        assert!(full.len() >= 5);
        let smoke = mesh_ladder(true);
        assert_eq!(smoke.len(), 2);
        assert_eq!(smoke[0].0, "paper660");
        assert_eq!(smoke[1].0, "criterion_fine");
    }

    #[test]
    fn json_shape_is_stable() {
        let report = ScalingReport {
            host_cores: 4,
            threads_override: None,
            smoke: true,
            cases: vec![CaseResult {
                mesh: "paper660",
                cells: 640,
                edges: 1936,
                colors: 6,
                integrator: "semi_implicit",
                sweep: "reference",
                solver: "gs",
                parallel_active: false,
                windows: 3,
                substeps: 60,
                wall_s: 0.1,
                substeps_per_s: 600.0,
                avg_sweeps: 7.5,
                avg_cycles: 0.0,
                unconverged: 60,
                max_temp_k: 301.0,
            }],
            builds: vec![MeshBuild {
                mesh: "paper660",
                tiles: 160,
                cells: 640,
                mesh_build_ms: 1.0,
                hierarchy_build_ms: 2.5,
            }],
        };
        let json = report.to_json();
        for needle in [
            "\"host_cores\": 4",
            "\"substeps_per_s\": 600.0",
            "\"speedup_vs_reference\": 1.000",
            "\"mesh_builds\"",
            "\"mesh_build_ms\": 1.000",
            "\"hierarchy_build_ms\": 2.500",
            "\"smoke\": true",
            "\"solver\": \"gs\"",
            "\"unconverged_substeps\": 60",
            "\"avg_cycles\": 0.00",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn ladder_has_a_100k_rung() {
        let full = mesh_ladder(false);
        assert_eq!(full.last().unwrap().0, "mega");
    }
}
