//! Property: splitting a run at *any* window boundary — run `k` windows,
//! checkpoint, serialize, deserialize, resume, run the remaining `n - k`
//! — produces a report and temperature trace bitwise-identical to the
//! uninterrupted `n`-window run. Sampled across both implicit solvers
//! and the DFS ladder variants, because each owns state a checkpoint
//! must carry (multigrid warm-start history, ladder level + hysteresis).

use proptest::prelude::*;
use temu_framework::{EmulationState, ImplicitSolve, Scenario, ScenarioRun};
use temu_platform::DfsPolicy;

#[derive(Clone, Copy, Debug)]
enum Ladder {
    /// No DFS: cores run at their nominal clock throughout.
    Off,
    /// The paper's 350 K / 340 K dual-threshold policy.
    Paper,
    /// Thresholds barely above ambient, so the ladder actually moves
    /// (and its position + hysteresis state matter) within a short run.
    Aggressive,
}

fn scenario(n: u64, solver: ImplicitSolve, ladder: Ladder) -> Scenario {
    let base = Scenario::exploration_bus(2)
        .sampling_window_s(0.002)
        .windows(n)
        .implicit_solve(solver);
    match ladder {
        Ladder::Off => base,
        Ladder::Paper => base.policy(DfsPolicy::paper()),
        Ladder::Aggressive => base.policy(
            DfsPolicy::new(301.0, 300.5, 500_000_000, 100_000_000)
                .expect("a barely-above-ambient band is a valid ladder"),
        ),
    }
}

/// Bitwise equality of everything a run reports except wall-clock time.
fn assert_run_bitwise_eq(split: &ScenarioRun, full: &ScenarioRun) {
    let (a, b) = (&split.report, &full.report);
    prop_assert_eq!(a.windows, b.windows);
    prop_assert_eq!(a.virtual_cycles, b.virtual_cycles);
    prop_assert_eq!(a.virtual_seconds.to_bits(), b.virtual_seconds.to_bits());
    prop_assert_eq!(a.fpga_seconds.to_bits(), b.fpga_seconds.to_bits());
    prop_assert_eq!(a.all_halted, b.all_halted);
    prop_assert_eq!(format!("{:?}", a.aggregate), format!("{:?}", b.aggregate));
    prop_assert_eq!(format!("{:?}", a.link), format!("{:?}", b.link));
    prop_assert_eq!(format!("{:?}", a.solver), format!("{:?}", b.solver));
    prop_assert_eq!(split.trace.samples.len(), full.trace.samples.len());
    for (x, y) in split.trace.samples.iter().zip(full.trace.samples.iter()) {
        prop_assert_eq!(x.virtual_hz, y.virtual_hz);
        prop_assert_eq!(x.max_temp_k.to_bits(), y.max_temp_k.to_bits());
        prop_assert_eq!(x.temps_k.len(), y.temps_k.len());
        for (tx, ty) in x.temps_k.iter().zip(&y.temps_k) {
            prop_assert_eq!(tx.to_bits(), ty.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_split_point_resumes_bitwise_identically(
        n in 4u64..9,
        split_roll in 0u64..1000,
        solver in prop::sample::select(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ladder in prop::sample::select(&[Ladder::Off, Ladder::Paper, Ladder::Aggressive]),
    ) {
        let k = 1 + split_roll % (n - 1); // 1 ..= n-1: a genuine mid-run boundary
        let scenario = scenario(n, solver, ladder);
        let full = scenario.run().unwrap();

        // Run the first k windows, checkpoint, and force the state
        // through its serialized form — the proof covers the codec, not
        // just the in-memory struct.
        let mut emu = scenario.build().unwrap();
        let _ = emu.run_windows(k).unwrap();
        let state = emu.checkpoint().unwrap();
        prop_assert_eq!(state.windows(), k);
        prop_assert_eq!(state.scenario_key(), scenario.content_key());
        let state = EmulationState::from_bytes(&state.to_bytes()).unwrap();

        let resumed = scenario.resume_run(&state).unwrap();
        assert_run_bitwise_eq(&resumed, &full);
    }
}
