#!/usr/bin/env bash
# The full local gate: tier-1 build+tests, lint wall, and the bench-smoke
# perf gate. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== lint wall: clippy -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== bench-smoke gate =="
# Also the solver-convergence gate: the smoke rungs include multigrid
# cases, and the bench fails if any multigrid substep is accepted
# unconverged (the tier-1 tests additionally run a strict-convergence
# multigrid campaign in crates/bench/tests/bench_smoke.rs).
# --out keeps the smoke report away from the committed full-run
# BENCH_thermal.json.
cargo run --release -p temu-bench --bin thermal_scaling -- --smoke --out target/bench_smoke.json

echo "== sweep-smoke + batch-smoke gate =="
# The design-space sweep gate: an 8-point strict-convergence mini sweep
# (multigrid included) must run clean with the shared mesh built exactly
# once (7 artifact-cache hits — zero hits fails), its identical
# in-process re-run must be 100% result-cache hits with zero scenario
# executions, and the same grid through the batched many-RHS lockstep
# path must reproduce the campaign run bitwise (peak/final temperatures
# compared by bit pattern).
cargo run --release -p temu-bench --bin sweep -- --smoke

echo "== serve-smoke gate =="
# The job-server gate, through the real bins over a real socket: start
# temu-serve on an ephemeral port with a temp cache store, submit the
# 8-point strict-convergence smoke preset via temu-client (any
# non-converging or failed point exits non-zero), then resubmit and
# require the whole job be served from the cache with zero scenarios
# executed (--require-cached).
SERVE_TMP=$(mktemp -d)
SERVE_PID=""
serve_cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SERVE_TMP"
}
trap serve_cleanup EXIT
target/release/temu-serve --addr 127.0.0.1:0 --store "$SERVE_TMP/cache.jsonl" \
    > "$SERVE_TMP/serve.log" 2>&1 &
SERVE_PID=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^temu-serve listening on //p' "$SERVE_TMP/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "serve smoke FAILED: temu-serve never reported its address"
    cat "$SERVE_TMP/serve.log"
    exit 1
fi
target/release/temu-client --addr "$addr" submit --preset smoke
target/release/temu-client --addr "$addr" submit --preset smoke --require-cached
target/release/temu-client --addr "$addr" stats
target/release/temu-client --addr "$addr" shutdown
wait "$SERVE_PID"
SERVE_PID=""
echo "serve smoke OK"

echo "== obs-smoke gate =="
# The observability gate. First the A/B perf guard: the smoke grid with
# the metrics registry enabled must stay within noise of the disabled
# run (the solver substep timers sit on the hottest loop). Then a serve
# flow with --metrics-log: the NDJSON snapshot log must parse, its seqs
# and counters must be monotone, the final snapshot's completed-job
# counter must match the two jobs the client ran, and the `metrics` and
# `results` commands must answer over the wire.
cargo run --release -p temu-bench --bin sweep -- --obs-ab
OBS_TMP=$(mktemp -d)
OBS_PID=""
obs_cleanup() {
    [ -n "$OBS_PID" ] && kill "$OBS_PID" 2>/dev/null || true
    rm -rf "$OBS_TMP" "$SERVE_TMP"
}
trap obs_cleanup EXIT
target/release/temu-serve --addr 127.0.0.1:0 --store "$OBS_TMP/cache.jsonl" \
    --metrics-log "$OBS_TMP/metrics.ndjson" --metrics-interval 100 \
    > "$OBS_TMP/serve.log" 2>&1 &
OBS_PID=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^temu-serve listening on //p' "$OBS_TMP/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "obs smoke FAILED: temu-serve never reported its address"
    cat "$OBS_TMP/serve.log"
    exit 1
fi
target/release/temu-client --addr "$addr" submit --preset smoke
target/release/temu-client --addr "$addr" submit --preset smoke --require-cached
# The streamed feed replays both jobs' completed points as NDJSON.
results_lines=$(target/release/temu-client --addr "$addr" results | wc -l)
if [ "$results_lines" -lt 16 ]; then
    echo "obs smoke FAILED: results replayed only $results_lines event(s) for two 8-point jobs"
    exit 1
fi
target/release/temu-client --addr "$addr" metrics
target/release/temu-client --addr "$addr" stats
target/release/temu-client --addr "$addr" shutdown
wait "$OBS_PID"
OBS_PID=""
target/release/temu-client check-metrics-log "$OBS_TMP/metrics.ndjson" --jobs-done 2
echo "obs smoke OK"

echo "== resume-smoke gate =="
# The window-checkpoint gate, through the real bins: start temu-serve
# with --window-checkpoint 5, submit a single long point (~4 s), kill
# the server -9 once a mid-point checkpoint record has been persisted,
# restart it on the same store, and watch the recovered job to
# completion — the restart banner must report the recovered mid-point
# state, and the finished job must land in the cache (the final
# --require-cached resubmission exits 3 if anything re-executes).
RESUME_TMP=$(mktemp -d)
RESUME_PID=""
resume_cleanup() {
    [ -n "$RESUME_PID" ] && kill "$RESUME_PID" 2>/dev/null || true
    rm -rf "$RESUME_TMP" "$OBS_TMP" "$SERVE_TMP"
}
trap resume_cleanup EXIT
cat > "$RESUME_TMP/spec.json" <<'SPEC'
{"name": "resume-smoke", "cores": 2,
 "workload": {"kind": "matrix", "n": 48, "iters": 200, "cores": 2},
 "sampling_window_s": 0.0005, "windows": 400,
 "strict_convergence": true, "mesh": {"hot_div": 4}}
SPEC
target/release/temu-serve --addr 127.0.0.1:0 --store "$RESUME_TMP/cache.jsonl" \
    --window-checkpoint 5 > "$RESUME_TMP/serve.log" 2>&1 &
RESUME_PID=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^temu-serve listening on //p' "$RESUME_TMP/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "resume smoke FAILED: temu-serve never reported its address"
    cat "$RESUME_TMP/serve.log"
    exit 1
fi
target/release/temu-client --addr "$addr" submit --spec "$RESUME_TMP/spec.json" --no-watch
# Wait for a persisted mid-point checkpoint record, then SIGKILL.
ck_seen=""
for _ in $(seq 1 200); do
    if grep -q '{"ck"' "$RESUME_TMP/jobs.checkpoints.jsonl" 2>/dev/null; then
        ck_seen=yes
        break
    fi
    sleep 0.05
done
if [ -z "$ck_seen" ]; then
    echo "resume smoke FAILED: no window checkpoint record appeared"
    cat "$RESUME_TMP/serve.log"
    exit 1
fi
kill -9 "$RESUME_PID"
wait "$RESUME_PID" 2>/dev/null || true
target/release/temu-serve --addr 127.0.0.1:0 --store "$RESUME_TMP/cache.jsonl" \
    --window-checkpoint 5 > "$RESUME_TMP/serve2.log" 2>&1 &
RESUME_PID=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^temu-serve listening on //p' "$RESUME_TMP/serve2.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "resume smoke FAILED: restarted temu-serve never reported its address"
    cat "$RESUME_TMP/serve2.log"
    exit 1
fi
if ! grep -q '1 mid-point state(s) recovered' "$RESUME_TMP/serve2.log"; then
    echo "resume smoke FAILED: restart did not recover the mid-point state"
    cat "$RESUME_TMP/serve2.log"
    exit 1
fi
target/release/temu-client --addr "$addr" watch 1
target/release/temu-client --addr "$addr" submit --spec "$RESUME_TMP/spec.json" --require-cached
target/release/temu-client --addr "$addr" shutdown
wait "$RESUME_PID"
RESUME_PID=""
echo "resume smoke OK"

echo "== chaos-smoke gate =="
# The fault-tolerance gate: the same serve smoke with faults injected —
# workers panic at 30% of checkpoints and 20% of fresh connections are
# dropped on the floor. Submissions are retried until one run completes
# (every failed run banks its finished points in the store), and the
# rerun must still be answered 100% from the cache with exit 0: a
# fully-cached job never checkpoints, so panics cannot reach it, and
# dropped connections are absorbed by the client's backoff.
CHAOS_TMP=$(mktemp -d)
CHAOS_PID=""
chaos_cleanup() {
    [ -n "$CHAOS_PID" ] && kill "$CHAOS_PID" 2>/dev/null || true
    rm -rf "$CHAOS_TMP" "$RESUME_TMP" "$OBS_TMP" "$SERVE_TMP"
}
trap chaos_cleanup EXIT
TEMU_FAULT="worker_panic:0.3,drop_conn:0.2" \
    target/release/temu-serve --addr 127.0.0.1:0 --store "$CHAOS_TMP/cache.jsonl" \
    > "$CHAOS_TMP/serve.log" 2>&1 &
CHAOS_PID=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^temu-serve listening on //p' "$CHAOS_TMP/serve.log")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "chaos smoke FAILED: temu-serve never reported its address"
    cat "$CHAOS_TMP/serve.log"
    exit 1
fi
chaos_ok=""
for attempt in $(seq 1 15); do
    if target/release/temu-client --addr "$addr" --retries 8 submit --preset smoke; then
        chaos_ok=yes
        break
    fi
    echo "chaos smoke: submission $attempt hit an injected fault, retrying"
done
if [ -z "$chaos_ok" ]; then
    echo "chaos smoke FAILED: no submission completed within 15 attempts"
    exit 1
fi
target/release/temu-client --addr "$addr" --retries 8 submit --preset smoke --require-cached
target/release/temu-client --addr "$addr" --retries 8 shutdown
wait "$CHAOS_PID" || true
CHAOS_PID=""
echo "chaos smoke OK"

echo "== fleet-smoke gate =="
# The fleet gate, through the real bins: two temu-serve members sharing
# one cache store (distinct journals — ids must not collide), a
# temu-router in front, and an unmodified temu-client submitting the
# smoke preset through the router. The identical resubmission must
# rendezvous to the same member and be served 100% from its cache
# (--require-cached exits 3 otherwise).
FLEET_TMP=$(mktemp -d)
FLEET_PIDS=""
fleet_cleanup() {
    for pid in $FLEET_PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$FLEET_TMP" "$CHAOS_TMP" "$RESUME_TMP" "$OBS_TMP" "$SERVE_TMP"
}
trap fleet_cleanup EXIT

wait_addr() { # logfile prefix -> prints the bound address
    local found=""
    for _ in $(seq 1 100); do
        found=$(sed -n "s/^$2 listening on //p" "$1")
        [ -n "$found" ] && break
        sleep 0.1
    done
    if [ -z "$found" ]; then
        echo "fleet smoke FAILED: no '$2 listening on' banner in $1" >&2
        cat "$1" >&2
        return 1
    fi
    echo "$found"
}

target/release/temu-serve --addr 127.0.0.1:0 --store "$FLEET_TMP/cache.jsonl" \
    --journal "$FLEET_TMP/jobs-a.jsonl" --member a > "$FLEET_TMP/member-a.log" 2>&1 &
FLEET_PIDS="$FLEET_PIDS $!"
target/release/temu-serve --addr 127.0.0.1:0 --store "$FLEET_TMP/cache.jsonl" \
    --journal "$FLEET_TMP/jobs-b.jsonl" --member b > "$FLEET_TMP/member-b.log" 2>&1 &
FLEET_PIDS="$FLEET_PIDS $!"
member_a=$(wait_addr "$FLEET_TMP/member-a.log" temu-serve)
member_b=$(wait_addr "$FLEET_TMP/member-b.log" temu-serve)
target/release/temu-router --addr 127.0.0.1:0 --member "$member_a" --member "$member_b" \
    > "$FLEET_TMP/router.log" 2>&1 &
FLEET_PIDS="$FLEET_PIDS $!"
router=$(wait_addr "$FLEET_TMP/router.log" temu-router)
target/release/temu-client --addr "$router" submit --preset smoke
target/release/temu-client --addr "$router" submit --preset smoke --require-cached
target/release/temu-client --addr "$router" stats
target/release/temu-client --addr "$router" shutdown
target/release/temu-client --addr "$member_a" shutdown
target/release/temu-client --addr "$member_b" shutdown
for pid in $FLEET_PIDS; do wait "$pid" || true; done
FLEET_PIDS=""
echo "fleet smoke OK"

echo "All checks passed."
