//! Binary encoding of TE32 instructions.
//!
//! Layout (bit 31 is the most significant):
//!
//! ```text
//! R-type   | opcode:6 | rd:5 | rs1:5 | rs2:5 | funct:11 |
//! I-type   | opcode:6 | rd:5 | rs1:5 |      imm:16      |   (stores put rs2 in the rd slot)
//! J-type   | opcode:6 |            imm26:26             |
//! ```
//!
//! The codec is bijective over the valid instruction space: `decode(encode(i)) == i`
//! for every well-formed [`Instr`], which is enforced by property tests.

use crate::instr::{AluImmOp, AluOp, Cond, Instr, Reg, ShiftOp, Width};
use std::error::Error;
use std::fmt;

mod op {
    pub const RTYPE: u32 = 0x00;
    pub const ADDI: u32 = 0x01;
    pub const ANDI: u32 = 0x02;
    pub const ORI: u32 = 0x03;
    pub const XORI: u32 = 0x04;
    pub const SLTI: u32 = 0x05;
    pub const SLTIU: u32 = 0x06;
    pub const LUI: u32 = 0x07;
    pub const SLLI: u32 = 0x08;
    pub const SRLI: u32 = 0x09;
    pub const SRAI: u32 = 0x0A;
    pub const LW: u32 = 0x10;
    pub const LH: u32 = 0x11;
    pub const LHU: u32 = 0x12;
    pub const LB: u32 = 0x13;
    pub const LBU: u32 = 0x14;
    pub const SW: u32 = 0x15;
    pub const SH: u32 = 0x16;
    pub const SB: u32 = 0x17;
    pub const TAS: u32 = 0x18;
    pub const BEQ: u32 = 0x20;
    pub const BNE: u32 = 0x21;
    pub const BLT: u32 = 0x22;
    pub const BGE: u32 = 0x23;
    pub const BLTU: u32 = 0x24;
    pub const BGEU: u32 = 0x25;
    pub const JAL: u32 = 0x28;
    pub const JALR: u32 = 0x29;
    pub const HALT: u32 = 0x3F;
}

/// Error returned by [`Instr::decode`] for words that are not valid TE32.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The opcode field does not name an instruction.
    UnknownOpcode(u8),
    /// An R-type word carries an unknown `funct` selector.
    UnknownFunct(u16),
    /// A shift-immediate word carries a shift amount >= 32.
    ShiftOutOfRange(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::UnknownFunct(funct) => write!(f, "unknown R-type funct {funct:#05x}"),
            DecodeError::ShiftOutOfRange(sh) => write!(f, "shift amount {sh} out of range 0..32"),
        }
    }
}

impl Error for DecodeError {}

fn funct_of(op: AluOp) -> u32 {
    AluOp::ALL.iter().position(|&o| o == op).expect("AluOp::ALL is exhaustive") as u32
}

fn fields(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
    ((rd.index() as u32) << 21) | ((rs1.index() as u32) << 16) | ((rs2.index() as u32) << 11)
}

fn itype(opcode: u32, rd: Reg, rs1: Reg, imm: i16) -> u32 {
    (opcode << 26) | ((rd.index() as u32) << 21) | ((rs1.index() as u32) << 16) | (imm as u16 as u32)
}

impl Instr {
    /// Encodes the instruction into its 32-bit binary form.
    pub fn encode(self) -> u32 {
        match self {
            Instr::Alu { op, rd, rs1, rs2 } => (op::RTYPE << 26) | fields(rd, rs1, rs2) | funct_of(op),
            Instr::AluImm { op, rd, rs1, imm } => {
                let opcode = match op {
                    AluImmOp::Add => op::ADDI,
                    AluImmOp::And => op::ANDI,
                    AluImmOp::Or => op::ORI,
                    AluImmOp::Xor => op::XORI,
                    AluImmOp::Slt => op::SLTI,
                    AluImmOp::Sltu => op::SLTIU,
                };
                itype(opcode, rd, rs1, imm)
            }
            Instr::ShiftImm { op, rd, rs1, sh } => {
                debug_assert!(sh < 32, "shift amount {sh} out of range");
                let opcode = match op {
                    ShiftOp::Sll => op::SLLI,
                    ShiftOp::Srl => op::SRLI,
                    ShiftOp::Sra => op::SRAI,
                };
                itype(opcode, rd, rs1, i16::from(sh & 31))
            }
            Instr::Lui { rd, imm } => itype(op::LUI, rd, Reg::ZERO, imm as i16),
            Instr::Load { width, signed, rd, rs1, off } => {
                let opcode = match (width, signed) {
                    (Width::Word, _) => op::LW,
                    (Width::Half, true) => op::LH,
                    (Width::Half, false) => op::LHU,
                    (Width::Byte, true) => op::LB,
                    (Width::Byte, false) => op::LBU,
                };
                itype(opcode, rd, rs1, off)
            }
            Instr::Store { width, rs2, rs1, off } => {
                let opcode = match width {
                    Width::Word => op::SW,
                    Width::Half => op::SH,
                    Width::Byte => op::SB,
                };
                itype(opcode, rs2, rs1, off)
            }
            Instr::Tas { rd, rs1, off } => itype(op::TAS, rd, rs1, off),
            Instr::Branch { cond, rs1, rs2, off } => {
                let opcode = match cond {
                    Cond::Eq => op::BEQ,
                    Cond::Ne => op::BNE,
                    Cond::Lt => op::BLT,
                    Cond::Ge => op::BGE,
                    Cond::Ltu => op::BLTU,
                    Cond::Geu => op::BGEU,
                };
                itype(opcode, rs1, rs2, off)
            }
            Instr::Jal { off } => {
                debug_assert!((-(1 << 25)..(1 << 25)).contains(&off), "jal offset {off} out of 26-bit range");
                (op::JAL << 26) | ((off as u32) & 0x03FF_FFFF)
            }
            Instr::Jalr { rd, rs1, off } => itype(op::JALR, rd, rs1, off),
            Instr::Halt => op::HALT << 26,
        }
    }

    /// Decodes a 32-bit word into an instruction.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the word does not encode a valid TE32
    /// instruction (unknown opcode/funct or out-of-range shift amount).
    pub fn decode(word: u32) -> Result<Instr, DecodeError> {
        let opcode = word >> 26;
        let rd = Reg::new(((word >> 21) & 31) as u8);
        let rs1 = Reg::new(((word >> 16) & 31) as u8);
        let rs2 = Reg::new(((word >> 11) & 31) as u8);
        let imm = (word & 0xFFFF) as u16 as i16;
        let alu_imm = |op| Ok(Instr::AluImm { op, rd, rs1, imm });
        let shift = |op| {
            let sh = (imm as u16 & 0xFF) as u8;
            if sh < 32 {
                Ok(Instr::ShiftImm { op, rd, rs1, sh })
            } else {
                Err(DecodeError::ShiftOutOfRange(sh))
            }
        };
        let load = |width, signed| Ok(Instr::Load { width, signed, rd, rs1, off: imm });
        let store = |width| Ok(Instr::Store { width, rs2: rd, rs1, off: imm });
        let branch = |cond| Ok(Instr::Branch { cond, rs1: rd, rs2: rs1, off: imm });
        match opcode {
            op::RTYPE => {
                let funct = (word & 0x7FF) as u16;
                let op = AluOp::ALL
                    .get(funct as usize)
                    .copied()
                    .ok_or(DecodeError::UnknownFunct(funct))?;
                Ok(Instr::Alu { op, rd, rs1, rs2 })
            }
            op::ADDI => alu_imm(AluImmOp::Add),
            op::ANDI => alu_imm(AluImmOp::And),
            op::ORI => alu_imm(AluImmOp::Or),
            op::XORI => alu_imm(AluImmOp::Xor),
            op::SLTI => alu_imm(AluImmOp::Slt),
            op::SLTIU => alu_imm(AluImmOp::Sltu),
            op::LUI => Ok(Instr::Lui { rd, imm: imm as u16 }),
            op::SLLI => shift(ShiftOp::Sll),
            op::SRLI => shift(ShiftOp::Srl),
            op::SRAI => shift(ShiftOp::Sra),
            op::LW => load(Width::Word, true),
            op::LH => load(Width::Half, true),
            op::LHU => load(Width::Half, false),
            op::LB => load(Width::Byte, true),
            op::LBU => load(Width::Byte, false),
            op::SW => store(Width::Word),
            op::SH => store(Width::Half),
            op::SB => store(Width::Byte),
            op::TAS => Ok(Instr::Tas { rd, rs1, off: imm }),
            op::BEQ => branch(Cond::Eq),
            op::BNE => branch(Cond::Ne),
            op::BLT => branch(Cond::Lt),
            op::BGE => branch(Cond::Ge),
            op::BLTU => branch(Cond::Ltu),
            op::BGEU => branch(Cond::Geu),
            op::JAL => {
                let raw = word & 0x03FF_FFFF;
                // Sign-extend the 26-bit field.
                let off = ((raw << 6) as i32) >> 6;
                Ok(Instr::Jal { off })
            }
            op::JALR => Ok(Instr::Jalr { rd, rs1, off: imm }),
            op::HALT => Ok(Instr::Halt),
            other => Err(DecodeError::UnknownOpcode(other as u8)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reg_strategy() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(Reg::new)
    }

    /// A strategy over every well-formed TE32 instruction.
    pub(crate) fn instr_strategy() -> impl Strategy<Value = Instr> {
        let r = reg_strategy;
        prop_oneof![
            (prop::sample::select(&AluOp::ALL[..]), r(), r(), r())
                .prop_map(|(op, rd, rs1, rs2)| Instr::Alu { op, rd, rs1, rs2 }),
            (prop::sample::select(&AluImmOp::ALL[..]), r(), r(), any::<i16>())
                .prop_map(|(op, rd, rs1, imm)| Instr::AluImm { op, rd, rs1, imm }),
            (prop::sample::select(&ShiftOp::ALL[..]), r(), r(), 0u8..32)
                .prop_map(|(op, rd, rs1, sh)| Instr::ShiftImm { op, rd, rs1, sh }),
            (r(), any::<u16>()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
            (prop::sample::select(&[Width::Byte, Width::Half, Width::Word][..]), any::<bool>(), r(), r(), any::<i16>())
                .prop_filter_map("word loads are always signed", |(width, signed, rd, rs1, off)| {
                    let signed = if width == Width::Word { true } else { signed };
                    Some(Instr::Load { width, signed, rd, rs1, off })
                }),
            (prop::sample::select(&[Width::Byte, Width::Half, Width::Word][..]), r(), r(), any::<i16>())
                .prop_map(|(width, rs2, rs1, off)| Instr::Store { width, rs2, rs1, off }),
            (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Tas { rd, rs1, off }),
            (prop::sample::select(&Cond::ALL[..]), r(), r(), any::<i16>())
                .prop_map(|(cond, rs1, rs2, off)| Instr::Branch { cond, rs1, rs2, off }),
            (-(1i32 << 25)..(1i32 << 25)).prop_map(|off| Instr::Jal { off }),
            (r(), r(), any::<i16>()).prop_map(|(rd, rs1, off)| Instr::Jalr { rd, rs1, off }),
            Just(Instr::Halt),
        ]
    }

    proptest! {
        #[test]
        fn encode_decode_round_trip(instr in instr_strategy()) {
            let word = instr.encode();
            prop_assert_eq!(Instr::decode(word), Ok(instr));
        }

        #[test]
        fn decode_never_panics(word in any::<u32>()) {
            let _ = Instr::decode(word);
        }

        #[test]
        fn decode_encode_fixpoint(word in any::<u32>()) {
            // Any word that decodes must re-encode to a word that decodes to
            // the same instruction (the codec normalizes dont-care bits).
            if let Ok(instr) = Instr::decode(word) {
                prop_assert_eq!(Instr::decode(instr.encode()), Ok(instr));
            }
        }
    }

    #[test]
    fn specific_encodings_are_stable() {
        // Pin a few encodings so the binary format never changes silently.
        assert_eq!(Instr::Halt.encode(), 0xFC00_0000);
        assert_eq!(Instr::NOP.encode(), 0x0400_0000);
        let add = Instr::Alu { op: AluOp::Add, rd: Reg::new(1), rs1: Reg::new(2), rs2: Reg::new(3) };
        assert_eq!(add.encode(), 0x0022_1800 | 0x0020_0000);
    }

    #[test]
    fn jal_offset_sign_extension() {
        let neg = Instr::Jal { off: -5 };
        assert_eq!(Instr::decode(neg.encode()), Ok(neg));
        let max = Instr::Jal { off: (1 << 25) - 1 };
        assert_eq!(Instr::decode(max.encode()), Ok(max));
        let min = Instr::Jal { off: -(1 << 25) };
        assert_eq!(Instr::decode(min.encode()), Ok(min));
    }

    #[test]
    fn unknown_opcode_is_an_error() {
        assert_eq!(Instr::decode(0x3E << 26), Err(DecodeError::UnknownOpcode(0x3E)));
    }

    #[test]
    fn unknown_funct_is_an_error() {
        assert_eq!(Instr::decode(0x7FF), Err(DecodeError::UnknownFunct(0x7FF)));
    }

    #[test]
    fn shift_out_of_range_is_an_error() {
        // SLLI with sh = 40.
        let word = (0x08 << 26) | 40;
        assert_eq!(Instr::decode(word), Err(DecodeError::ShiftOutOfRange(40)));
    }

    #[test]
    fn decode_error_display() {
        assert!(DecodeError::UnknownOpcode(9).to_string().contains("opcode"));
        assert!(DecodeError::UnknownFunct(900).to_string().contains("funct"));
        assert!(DecodeError::ShiftOutOfRange(40).to_string().contains("shift"));
    }
}
