//! The emulation job client.
//!
//! ```sh
//! temu-client [--addr HOST:PORT] [--retries N | --no-retry]
//!             submit (--spec FILE.json | --preset NAME)
//!             [--threads N] [--priority N] [--no-watch] [--require-cached]
//! temu-client [--addr HOST:PORT] status JOB | result JOB | cancel JOB |
//!             watch JOB | stats | shutdown
//! temu-client [--addr HOST:PORT] metrics [--watch SECS]
//! temu-client [--addr HOST:PORT] results [--after SEQ] [--follow] [--job ID]
//! temu-client check-metrics-log FILE.ndjson [--jobs-done N]
//! temu-client presets
//! ```
//!
//! `submit` sends a sweep spec (a JSON file — a full sweep, or a bare
//! scenario spec that becomes a one-point sweep — or a named preset) and,
//! unless `--no-watch`, pretty-prints the streamed per-point progress.
//!
//! Transient failures (refused connect, dropped connection, deadline) are
//! retried with exponential backoff and jitter — `--retries N` sizes the
//! budget, `--no-retry` fails fast. Retried submissions are safe: the
//! server memoizes results by content key, so a resubmitted sweep's
//! completed points are cache hits.
//!
//! Exit codes: 0 success; 1 failed points or a failed/cancelled job;
//! 2 usage, connection or server-refusal errors (including an unreachable
//! server after all attempts); 3 `--require-cached` was passed and the
//! job executed any scenario instead of hitting the cache.

use std::process::exit;
use temu_framework::{JsonValue, SweepSpec, NAMED_SWEEPS};
use temu_serve::client::{request_with_retry, submit_with_retry};
use temu_serve::{spec_from_document, Client, ClientError, RetryPolicy, ADDR_ENV, DEFAULT_ADDR};

const USAGE: &str = "usage: temu-client [--addr HOST:PORT] [--retries N | --no-retry] <submit|status|result|cancel|watch|stats|metrics|results|check-metrics-log|shutdown|presets> [args]
  submit (--spec FILE.json | --preset NAME) [--threads N] [--priority N] [--no-watch] [--require-cached]
  status|result|cancel|watch JOB
  metrics [--watch SECS]    metrics snapshot (repeating with counter deltas)
  results [--after SEQ] [--follow] [--job ID]    stream completed points as NDJSON
  check-metrics-log FILE.ndjson [--jobs-done N]    validate a --metrics-log file offline
  presets    list the named sweep presets";

fn fail(message: impl std::fmt::Display, code: i32) -> ! {
    eprintln!("temu-client: {message}");
    exit(code);
}

fn fail_client(e: &ClientError) -> ! {
    match e {
        ClientError::Unreachable { addr, attempts, .. } => {
            fail(format!("server unreachable at {addr} after {attempts} attempt(s)"), 2)
        }
        other => fail(other, 2),
    }
}

/// One idempotent request with full retry (fresh connection per attempt).
fn retrying<T>(
    addr: &str,
    policy: &RetryPolicy,
    call: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> T {
    request_with_retry(addr, policy, call).unwrap_or_else(|e| fail_client(&e))
}

fn print_event(event: &JsonValue) {
    match event.get("event").and_then(JsonValue::as_str) {
        Some("start") => {
            let total = event.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
            println!("running {total} point(s)");
        }
        Some("point") => {
            let field = |k: &str| event.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            let label = event.get("label").and_then(JsonValue::as_str).unwrap_or("?");
            // A mid-point window-checkpoint update (servers running with
            // --window-checkpoint); finished-point events never carry it.
            if let Some(progress) = event.get("progress") {
                let at = |k: &str| progress.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                println!(
                    "  [  ...  ] {label:<60} running {}/{} windows",
                    at("windows"),
                    at("total_windows")
                );
                return;
            }
            let status = if event.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                let peak = event
                    .get("peak_temp_k")
                    .and_then(JsonValue::as_f64)
                    .map_or_else(|| String::from("-"), |t| format!("{t:.2}K"));
                let cached = if event.get("cache_hit").and_then(JsonValue::as_bool) == Some(true) {
                    "  [cached]"
                } else {
                    ""
                };
                format!("peak {peak} windows {}{cached}", field("windows"))
            } else {
                format!("FAILED: {}", event.get("error").and_then(JsonValue::as_str).unwrap_or("?"))
            };
            println!("  [{:>3}/{}] {:<60} {status}", field("completed"), field("total"), label);
        }
        Some("done") => {}
        _ => println!("{event}"),
    }
}

fn summarize(done: &temu_serve::DoneSummary) {
    println!(
        "job finished: {} point(s), {} executed, {} cache hit(s), {} failed, {:.2} s server wall",
        done.points, done.executed, done.cache_hits, done.failed, done.wall_s
    );
    if let Some(e) = &done.error {
        println!("job error: {e}");
    }
}

fn submit(addr: &str, policy: &RetryPolicy, args: &[String]) -> ! {
    let mut spec: Option<SweepSpec> = None;
    let mut watch = true;
    let mut require_cached = false;
    let mut threads: Option<usize> = None;
    let mut priority: i64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                let path = it.next().unwrap_or_else(|| fail("--spec takes a path", 2));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(format!("reading {path}: {e}"), 2));
                let doc = JsonValue::parse(&text)
                    .unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e}"), 2));
                spec = Some(
                    spec_from_document(&doc).unwrap_or_else(|e| fail(format!("{path}: {e}"), 2)),
                );
            }
            "--preset" => {
                let name = it.next().unwrap_or_else(|| fail("--preset takes a name", 2));
                spec = Some(SweepSpec::named(name).unwrap_or_else(|| {
                    fail(format!("unknown preset {name:?} (see: temu-client presets)"), 2)
                }));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--threads takes a positive integer", 2)),
                );
            }
            "--priority" => {
                priority = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--priority takes an integer (higher runs first)", 2));
            }
            "--no-watch" => watch = false,
            "--require-cached" => require_cached = true,
            other => fail(format!("unknown submit argument {other:?}\n{USAGE}"), 2),
        }
    }
    let mut spec = spec.unwrap_or_else(|| fail(format!("submit needs --spec or --preset\n{USAGE}"), 2));
    if require_cached && !watch {
        // The cache gate needs the job's done summary, which only a
        // watched submission delivers.
        fail("--require-cached needs the watched submission (drop --no-watch)", 2);
    }
    if threads.is_some() {
        spec.threads = threads;
    }

    println!("submitting \"{}\" to {addr}", spec.name);
    let outcome = submit_with_retry(addr, policy, &spec, watch, priority, print_event)
        .unwrap_or_else(|e| fail_client(&e));
    if !watch {
        println!("queued as job {} ({} point(s))", outcome.job, outcome.total);
        exit(0);
    }
    let done = outcome.done.unwrap_or_else(|| fail("watched submission ended without a done event", 2));
    summarize(&done);
    if require_cached && done.executed != 0 {
        fail(format!("--require-cached: {} point(s) executed instead of hitting the cache", done.executed), 3);
    }
    exit(i32::from(!(done.ok && done.failed == 0)));
}

/// Human-oriented lines after the raw stats frame. Every field is
/// optional — an older server (no `queue_depth`) or a plain member (no
/// `members` breakdown) just prints fewer lines.
fn print_stats_summary(frame: &JsonValue) {
    if let Some(depth) = frame.get("queue_depth").and_then(JsonValue::as_u64) {
        let running = frame.get("running").and_then(JsonValue::as_u64).unwrap_or(0);
        let workers = frame.get("workers").and_then(JsonValue::as_u64).unwrap_or(0);
        println!("queue: {depth} queued, {running} running, {workers} worker(s)");
    }
    let Some(JsonValue::Arr(members)) = frame.get("members") else { return };
    println!("fleet: {} member(s)", members.len());
    for member in members {
        let addr = member.get("addr").and_then(JsonValue::as_str).unwrap_or("?");
        let state = if member.get("up").and_then(JsonValue::as_bool) == Some(true) {
            "up"
        } else {
            "DOWN"
        };
        let routed = member.get("routed").and_then(JsonValue::as_u64).unwrap_or(0);
        let failures = member.get("failures").and_then(JsonValue::as_u64).unwrap_or(0);
        println!("  {addr:<21} {state:<4} {routed} routed, {failures} failure(s)");
    }
}

/// One human line per histogram: count, mean and the three quantiles the
/// snapshot carries. Nanosecond metrics (`*_ns`) render in milliseconds.
fn print_histogram_line(name: &str, h: &JsonValue) {
    let num = |k: &str| h.get(k).and_then(JsonValue::as_f64).unwrap_or(0.0);
    let (scale, unit) = if name.ends_with("_ns") { (1e6, " ms") } else { (1.0, "") };
    println!(
        "  {name:<36} n={:<8} mean {:>9.3}{unit}  p50 {:>9.3}{unit}  p90 {:>9.3}{unit}  p99 {:>9.3}{unit}",
        num("count") as u64,
        num("mean") / scale,
        num("p50") / scale,
        num("p90") / scale,
        num("p99") / scale,
    );
}

/// Pretty-prints one metrics frame; with a previous frame, counters print
/// their delta since it (unchanged counters are suppressed, so a watch
/// tick shows what moved).
fn print_metrics(frame: &JsonValue, prev: Option<&JsonValue>) {
    if let Some(JsonValue::Obj(counters)) = frame.get("counters") {
        println!("counters:");
        for (name, v) in counters {
            let now = v.as_u64().unwrap_or(0);
            let before = prev
                .and_then(|p| p.get("counters"))
                .and_then(|c| c.get(name))
                .and_then(JsonValue::as_u64);
            match before {
                Some(b) if now == b => {}
                Some(b) => println!("  {name:<36} {now:<12} (+{})", now - b),
                None => println!("  {name:<36} {now}"),
            }
        }
    }
    if let Some(JsonValue::Obj(gauges)) = frame.get("gauges") {
        println!("gauges:");
        for (name, v) in gauges {
            println!("  {name:<36} {}", v.as_u64().unwrap_or(0));
        }
    }
    if let Some(JsonValue::Obj(histograms)) = frame.get("histograms") {
        println!("histograms:");
        for (name, h) in histograms {
            print_histogram_line(name, h);
        }
    }
}

fn metrics_cmd(addr: &str, policy: &RetryPolicy, args: &[String]) -> ! {
    let mut watch: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--watch" => {
                watch = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&secs| secs > 0)
                        .unwrap_or_else(|| fail("--watch takes a positive second count", 2)),
                );
            }
            other => fail(format!("unknown metrics argument {other:?}\n{USAGE}"), 2),
        }
    }
    let mut prev: Option<JsonValue> = None;
    loop {
        let frame = retrying(addr, policy, |c| c.metrics());
        print_metrics(&frame, prev.as_ref());
        let Some(secs) = watch else { exit(0) };
        prev = Some(frame);
        std::thread::sleep(std::time::Duration::from_secs(secs));
        println!();
    }
}

/// Streams the completed-point feed as raw NDJSON (one event per line,
/// each carrying its `seq`) — pipeline-friendly. `--follow` keeps the
/// stream open; a dropped connection resumes from the last seen sequence
/// number, so no event is duplicated or lost while the server retains it.
fn results_cmd(addr: &str, policy: &RetryPolicy, args: &[String]) -> ! {
    let mut after: u64 = 0;
    let mut follow = false;
    let mut job: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--after" => {
                after = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--after takes a sequence number", 2));
            }
            "--follow" => follow = true,
            "--job" => {
                job = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--job takes a job id", 2)),
                );
            }
            other => fail(format!("unknown results argument {other:?}\n{USAGE}"), 2),
        }
    }
    // The resume cursor advances as events print, so a reconnect (inside
    // request_with_retry, or the outer follow loop) replays from the last
    // event actually seen — exactly-once across drops.
    let cursor = std::cell::Cell::new(after);
    loop {
        let outcome = request_with_retry(addr, policy, |c| {
            c.results(cursor.get(), follow, job, |event| {
                if let Some(seq) = event.get("seq").and_then(JsonValue::as_u64) {
                    cursor.set(seq);
                }
                println!("{event}");
            })
        });
        match outcome {
            Ok(_end_cursor) => exit(0),
            // A mid-stream drop under --follow past the retry budget:
            // keep reconnecting from the cursor as long as the server
            // answers connects (an unreachable server is not transient
            // and falls through to the failure below).
            Err(e) if follow && e.is_transient() => continue,
            Err(e) => fail_client(&e),
        }
    }
}

/// Offline validation of a `--metrics-log` NDJSON file (the check.sh
/// obs-smoke gate): every line parses as a v1 snapshot, sequence numbers
/// strictly increase, every counter is monotone non-decreasing across
/// snapshots, and (with `--jobs-done`) the final snapshot's completed-job
/// counter matches. Snapshot lines are single `O_APPEND` writes, so only
/// the file's last line may legitimately be torn (a dying server).
fn check_metrics_log(args: &[String]) -> ! {
    let mut path: Option<&String> = None;
    let mut jobs_done: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--jobs-done" => {
                jobs_done = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--jobs-done takes a count", 2)),
                );
            }
            other if !other.starts_with("--") && path.is_none() => path = Some(arg),
            other => fail(format!("unknown check-metrics-log argument {other:?}\n{USAGE}"), 2),
        }
    }
    let path = path.unwrap_or_else(|| fail(format!("check-metrics-log takes a file\n{USAGE}"), 2));
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}"), 2));
    let lines: Vec<&str> = text.lines().filter(|line| !line.trim().is_empty()).collect();
    let mut prev: Option<JsonValue> = None;
    let mut snapshots = 0usize;
    for (i, line) in lines.iter().enumerate() {
        let frame = match JsonValue::parse(line) {
            Ok(frame) => frame,
            Err(e) if i + 1 == lines.len() => {
                println!("tolerating torn final line: {e}");
                break;
            }
            Err(e) => fail(format!("{path}:{}: invalid JSON: {e}", i + 1), 1),
        };
        if frame.get("temu_metrics").and_then(JsonValue::as_u64) != Some(1) {
            fail(format!("{path}:{}: not a v1 metrics snapshot", i + 1), 1);
        }
        let seq = frame
            .get("seq")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| fail(format!("{path}:{}: snapshot missing seq", i + 1), 1));
        if let Some(p) = &prev {
            let prev_seq = p.get("seq").and_then(JsonValue::as_u64).unwrap_or(0);
            if seq <= prev_seq {
                fail(format!("{path}:{}: seq {seq} does not advance past {prev_seq}", i + 1), 1);
            }
            if let (Some(JsonValue::Obj(counters)), Some(before)) =
                (frame.get("counters"), p.get("counters"))
            {
                for (name, v) in counters {
                    let now = v.as_u64().unwrap_or(0);
                    let was = before.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
                    if now < was {
                        fail(
                            format!(
                                "{path}:{}: counter {name} went backwards ({was} -> {now})",
                                i + 1
                            ),
                            1,
                        );
                    }
                }
            }
        }
        prev = Some(frame);
        snapshots += 1;
    }
    let last = prev.unwrap_or_else(|| fail(format!("{path}: no complete snapshot"), 1));
    let completed = last
        .get("counters")
        .and_then(|c| c.get("serve.jobs_completed"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    if let Some(expect) = jobs_done {
        if completed != expect {
            fail(format!("final snapshot reports {completed} completed job(s), expected {expect}"), 1);
        }
    }
    println!("metrics log OK: {snapshots} snapshot(s), final jobs_completed={completed}");
    exit(0);
}

fn job_arg(args: &[String]) -> u64 {
    args.first()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(format!("expected a job id\n{USAGE}"), 2))
}

/// One latency line under `stats`, fed by a best-effort `metrics` fetch:
/// queue-wait and run p50/p99 plus the point cache hit rate. Servers
/// predating the `metrics` command refuse the request — that (and any
/// other failure here) silently prints nothing, keeping `stats` working
/// against every server version.
fn print_latency_summary(addr: &str, stats: &JsonValue) {
    let Ok(mut client) = Client::connect(addr) else { return };
    let Ok(metrics) = client.metrics() else { return };
    let quantiles = |name: &str| {
        let h = metrics.get("histograms")?.get(name)?;
        let ms = |k: &str| Some(h.get(k)?.as_f64()? / 1e6);
        if h.get("count")?.as_u64()? == 0 {
            return None;
        }
        Some((ms("p50")?, ms("p99")?))
    };
    let mut parts: Vec<String> = Vec::new();
    if let Some((p50, p99)) = quantiles("serve.queue_wait_ns") {
        parts.push(format!("queue wait p50 {p50:.1} ms / p99 {p99:.1} ms"));
    }
    if let Some((p50, p99)) = quantiles("serve.run_ns") {
        parts.push(format!("run p50 {p50:.1} ms / p99 {p99:.1} ms"));
    }
    if let Some(rate) = stats.get("cache_hit_rate").and_then(JsonValue::as_f64) {
        parts.push(format!("cache hit rate {:.1}%", rate * 100.0));
    }
    if !parts.is_empty() {
        println!("latency: {}", parts.join(", "));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = std::env::var(ADDR_ENV).unwrap_or_else(|_| String::from(DEFAULT_ADDR));
    let mut policy = RetryPolicy::default();
    let mut rest = &args[..];
    loop {
        match rest {
            [flag, value, tail @ ..] if flag == "--addr" => {
                addr = value.clone();
                rest = tail;
            }
            [flag, value, tail @ ..] if flag == "--retries" => {
                policy.retries = value
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--retries takes a count\n{USAGE}"), 2));
                rest = tail;
            }
            [flag, tail @ ..] if flag == "--no-retry" => {
                policy = RetryPolicy::none();
                rest = tail;
            }
            _ => break,
        }
    }
    let Some((cmd, cmd_args)) = rest.split_first() else {
        eprintln!("{USAGE}");
        exit(2);
    };
    match cmd.as_str() {
        "submit" => submit(&addr, &policy, cmd_args),
        "presets" => {
            println!("named sweep presets (submit with: temu-client submit --preset NAME):");
            for (name, what) in NAMED_SWEEPS {
                println!("  {name:<10} {what}");
            }
        }
        "status" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.status(job));
            println!("{frame}");
        }
        "result" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.result(job));
            match frame.get("report") {
                Some(report) => println!("{report}"),
                None => println!("{frame}"),
            }
            let failed = frame.get("failed").and_then(JsonValue::as_u64).unwrap_or(0);
            exit(i32::from(failed != 0));
        }
        "cancel" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.cancel(job));
            println!("{frame}");
        }
        "watch" => {
            // A mid-stream drop reattaches; a job that finished in the
            // gap answers the re-watch with its done summary immediately.
            let job = job_arg(cmd_args);
            let done = retrying(&addr, &policy, |c| c.watch(job, print_event));
            summarize(&done);
            exit(i32::from(!(done.ok && done.failed == 0)));
        }
        "stats" => {
            let frame = retrying(&addr, &policy, |c| c.stats());
            println!("{frame}");
            print_stats_summary(&frame);
            print_latency_summary(&addr, &frame);
        }
        "metrics" => metrics_cmd(&addr, &policy, cmd_args),
        "results" => results_cmd(&addr, &policy, cmd_args),
        "check-metrics-log" => check_metrics_log(cmd_args),
        "shutdown" => {
            retrying(&addr, &policy, |c| c.shutdown());
            println!("server at {addr} shutting down");
        }
        other => fail(format!("unknown command {other:?}\n{USAGE}"), 2),
    }
}
