//! The fleet's member table: static addresses, rendezvous hashing, and
//! per-member health/traffic accounting.
//!
//! # Why rendezvous (highest-random-weight) hashing
//!
//! The router's whole value is that an identical resubmission lands on
//! the member that already holds the cached result. Rendezvous hashing
//! gives that with nothing shared between routers and no coordination:
//! every member gets a pseudo-random score per content key, the highest
//! score owns the key, and the *sorted* score order is a deterministic
//! failover sequence — when the owner is down, every router agrees on
//! the same second choice. Unlike modulo hashing, removing one member
//! only moves the keys that member owned.

use std::sync::{Mutex, MutexGuard, PoisonError};
use temu_framework::{fnv1a64, json_escape, JsonValue};

/// Health and traffic counters for one member.
#[derive(Clone, Debug)]
pub struct MemberHealth {
    /// Whether the member answered its last probe or request. Members
    /// start optimistically up; the first failed contact marks them down
    /// and the prober marks them back up when they answer again.
    pub up: bool,
    /// Submissions the router placed on this member.
    pub routed: u64,
    /// Connect/IO failures observed against this member.
    pub failures: u64,
}

struct Slot {
    addr: String,
    health: Mutex<MemberHealth>,
    /// The member's last `stats` frame (from the prober or an aggregated
    /// `stats` request); surfaces queue depth and cache size per member.
    last_stats: Mutex<Option<JsonValue>>,
}

/// The static member table (`--member` flags of `temu-router`).
pub struct MemberTable {
    slots: Vec<Slot>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemberTable {
    /// Builds the table from member addresses (order is irrelevant to
    /// routing — rendezvous scores don't depend on it).
    #[must_use]
    pub fn new(addrs: impl IntoIterator<Item = String>) -> MemberTable {
        MemberTable {
            slots: addrs
                .into_iter()
                .map(|addr| Slot {
                    addr,
                    health: Mutex::new(MemberHealth { up: true, routed: 0, failures: 0 }),
                    last_stats: Mutex::new(None),
                })
                .collect(),
        }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// A member's address.
    ///
    /// # Panics
    ///
    /// On an out-of-range index.
    #[must_use]
    pub fn addr(&self, index: usize) -> &str {
        &self.slots[index].addr
    }

    /// The rendezvous score of `addr` for a sweep content key: the
    /// member with the highest score owns the key.
    #[must_use]
    pub fn score(addr: &str, key: u64) -> u64 {
        let mut bytes = Vec::with_capacity(addr.len() + 9);
        bytes.extend_from_slice(addr.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&key.to_le_bytes());
        fnv1a64(&bytes)
    }

    /// Member indices in rendezvous order for `key`: the owner first,
    /// then the agreed failover sequence. Ties (only possible with
    /// duplicate addresses) break by address, keeping the order total.
    #[must_use]
    pub fn rendezvous(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.slots.len()).collect();
        order.sort_by(|a, b| {
            let (sa, sb) = (
                MemberTable::score(&self.slots[*a].addr, key),
                MemberTable::score(&self.slots[*b].addr, key),
            );
            sb.cmp(&sa).then_with(|| self.slots[*a].addr.cmp(&self.slots[*b].addr))
        });
        order
    }

    /// Whether the member is currently marked up.
    #[must_use]
    pub fn up(&self, index: usize) -> bool {
        lock(&self.slots[index].health).up
    }

    /// Members currently marked up.
    #[must_use]
    pub fn up_count(&self) -> usize {
        self.slots.iter().filter(|s| lock(&s.health).up).count()
    }

    /// Records a submission placed on the member (also re-marks it up:
    /// it just answered).
    pub fn mark_routed(&self, index: usize) {
        let mut h = lock(&self.slots[index].health);
        h.up = true;
        h.routed += 1;
    }

    /// Records a connect/IO failure against the member and marks it
    /// down — new submissions steer around it until a probe succeeds.
    pub fn mark_down(&self, index: usize) {
        let mut h = lock(&self.slots[index].health);
        h.up = false;
        h.failures += 1;
    }

    /// Sets the member's up/down state without touching the failure
    /// counter — the health prober's verdict, which shouldn't inflate
    /// failure counts once per interval for a member that stays down.
    pub fn set_up(&self, index: usize, up: bool) {
        lock(&self.slots[index].health).up = up;
    }

    /// Stores the member's latest `stats` frame.
    pub fn note_stats(&self, index: usize, frame: JsonValue) {
        *lock(&self.slots[index].last_stats) = Some(frame);
    }

    /// A member's health snapshot.
    #[must_use]
    pub fn health(&self, index: usize) -> MemberHealth {
        lock(&self.slots[index].health).clone()
    }

    /// Sums an integer field over the cached stats of *up* members (a
    /// down member's cached frame is stale, not current load).
    #[must_use]
    pub fn sum_stat(&self, field: &str) -> u64 {
        self.slots
            .iter()
            .filter(|s| lock(&s.health).up)
            .filter_map(|s| {
                lock(&s.last_stats).as_ref().and_then(|f| f.get(field).and_then(JsonValue::as_u64))
            })
            .sum()
    }

    /// The per-member breakdown array of the router's aggregated `stats`
    /// frame.
    #[must_use]
    pub fn members_json(&self) -> String {
        let parts: Vec<String> = self
            .slots
            .iter()
            .map(|s| {
                let h = lock(&s.health);
                let mut obj = format!(
                    "{{\"addr\": \"{}\", \"up\": {}, \"routed\": {}, \"failures\": {}",
                    json_escape(&s.addr),
                    h.up,
                    h.routed,
                    h.failures
                );
                if let Some(stats) = lock(&s.last_stats).as_ref() {
                    for field in ["member", "queue_depth", "running", "workers", "cache_entries"] {
                        if let Some(v) = stats.get(field) {
                            obj.push_str(&format!(", \"{field}\": {v}"));
                        }
                    }
                }
                obj.push('}');
                obj
            })
            .collect();
        format!("[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(addrs: &[&str]) -> MemberTable {
        MemberTable::new(addrs.iter().map(ToString::to_string))
    }

    #[test]
    fn rendezvous_is_deterministic_and_order_independent() {
        let a = table(&["10.0.0.1:7181", "10.0.0.2:7181", "10.0.0.3:7181"]);
        let b = table(&["10.0.0.3:7181", "10.0.0.1:7181", "10.0.0.2:7181"]);
        for key in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let owner_a = a.addr(a.rendezvous(key)[0]).to_string();
            let owner_b = b.addr(b.rendezvous(key)[0]).to_string();
            assert_eq!(owner_a, owner_b, "owner of {key:#x} must not depend on table order");
            assert_eq!(a.rendezvous(key), a.rendezvous(key), "must be deterministic");
        }
    }

    #[test]
    fn rendezvous_spreads_keys_and_removal_only_moves_the_lost_members_keys() {
        let full = table(&["10.0.0.1:7181", "10.0.0.2:7181", "10.0.0.3:7181"]);
        let reduced = table(&["10.0.0.1:7181", "10.0.0.2:7181"]);
        let mut counts = [0usize; 3];
        let mut moved = 0usize;
        let keys: Vec<u64> = (0..1000u64).map(|i| fnv1a64(&i.to_le_bytes())).collect();
        for &key in &keys {
            let owner = full.rendezvous(key)[0];
            counts[owner] += 1;
            let owner_addr = full.addr(owner);
            let reduced_addr = reduced.addr(reduced.rendezvous(key)[0]);
            if owner_addr == "10.0.0.3:7181" {
                // This key lost its owner; it must land on the full
                // table's second choice.
                assert_eq!(reduced_addr, full.addr(full.rendezvous(key)[1]));
                moved += 1;
            } else {
                assert_eq!(owner_addr, reduced_addr, "surviving owners keep their keys");
            }
        }
        assert!(counts.iter().all(|&c| c > 200), "badly skewed spread: {counts:?}");
        assert!(moved > 200, "the removed member owned a real share: {moved}");
    }

    #[test]
    fn health_accounting_distinguishes_probe_and_traffic_failures() {
        let t = table(&["127.0.0.1:1", "127.0.0.1:2"]);
        assert_eq!(t.up_count(), 2, "members start optimistically up");
        t.mark_down(0);
        assert!(!t.up(0));
        assert_eq!(t.health(0).failures, 1);
        t.set_up(0, false); // prober repeat: no failure inflation
        assert_eq!(t.health(0).failures, 1);
        t.mark_routed(0);
        assert!(t.up(0), "successful traffic re-marks a member up");
        assert_eq!(t.health(0).routed, 1);
    }

    #[test]
    fn members_json_carries_probe_fields_when_cached() {
        let t = table(&["127.0.0.1:1"]);
        let frame =
            JsonValue::parse("{\"ok\": true, \"queue_depth\": 3, \"member\": \"a\"}").unwrap();
        t.note_stats(0, frame);
        let json = t.members_json();
        let parsed = JsonValue::parse(&json).expect("breakdown is valid JSON");
        let JsonValue::Arr(items) = parsed else { panic!("not an array: {json}") };
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].get("queue_depth").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(items[0].get("member").and_then(JsonValue::as_str), Some("a"));
        assert_eq!(t.sum_stat("queue_depth"), 3);
        t.set_up(0, false);
        assert_eq!(t.sum_stat("queue_depth"), 0, "down members don't count toward load");
    }
}
