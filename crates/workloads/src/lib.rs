//! # temu-workloads — the paper's SW drivers, in TE32 assembly
//!
//! §7 of the paper drives the platform with three workloads, all reproduced
//! here as parameterized TE32 programs *plus bit-exact host-side reference
//! implementations* (the end-to-end correctness oracle: the emulated MPSoC
//! must compute exactly what the Rust reference computes):
//!
//! * [`matrix`] — "a kernel application that performs independent matrix
//!   multiplications at each processor private memory and combined in memory
//!   at the end" (MATRIX; with a large iteration count it is MATRIX-TM, the
//!   thermal stress workload of Fig. 6);
//! * [`dithering`] — "a dithering filtering using the Floyd algorithm in two
//!   128x128 grey images, divided in 4 segments and stored in shared
//!   memories" (DITHERING);
//! * [`image`] — deterministic synthetic grey-scale inputs for the dithering
//!   driver.
//!
//! All programs are SPMD: the same image is loaded on every core, and cores
//! branch on the MMIO core-id register. Synchronization uses the platform's
//! `tas` spinlock primitive over shared memory.

pub mod dithering;
mod error;
pub mod image;
pub mod matrix;

pub use error::WorkloadError;

/// Base address of the shared memory in the platform's default address map
/// (kept in sync with `temu_mem::SHARED_BASE`; asserted in tests).
pub const SHARED_BASE: u32 = 0x1000_0000;

/// Base address of the MMIO window.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
