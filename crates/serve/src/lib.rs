//! # temu-serve — the caching emulation job server
//!
//! Turns the workspace's experiment engine
//! ([`Scenario`](temu_framework::Scenario) →
//! [`Campaign`](temu_framework::Campaign) →
//! [`Sweep`](temu_framework::Sweep)) into shared, network-reachable
//! infrastructure: a `std`-only TCP server speaking newline-delimited
//! JSON, executing submitted [`SweepSpec`](temu_framework::SweepSpec)s on
//! a bounded job queue against one process-wide
//! [`ResultCache`](temu_framework::ResultCache), and streaming per-point
//! progress back to the submitter.
//!
//! Every client of the cache — a script resubmitting an overlapping
//! design-space grid, a second connection watching a long job, a restart
//! reloading the on-disk store — sees the same content-keyed results: a
//! scenario configuration is only ever emulated once per store.
//!
//! ```no_run
//! use temu_serve::{Client, ServeConfig, Server};
//! use temu_framework::SweepSpec;
//!
//! let handle = Server::spawn(ServeConfig {
//!     addr: String::from("127.0.0.1:0"),
//!     ..ServeConfig::default()
//! }).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let spec = SweepSpec::named("smoke").unwrap();
//! let outcome = client.submit(&spec, true, |event| println!("{event}")).unwrap();
//! assert!(outcome.done.unwrap().ok);
//! handle.shutdown();
//! ```
//!
//! The two bins wrap exactly this: `temu-serve` hosts [`Server::run`];
//! `temu-client` drives [`Client`] (submit a spec file or named preset,
//! pretty-print the streamed progress, exit nonzero on failed points).
//! See [`protocol`] for the wire format.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, DoneSummary, Submission};
pub use protocol::{spec_from_document, Request, ADDR_ENV, DEFAULT_ADDR};
pub use server::{ServeConfig, Server, ServerHandle};
