//! Closed-loop thermal emulation with run-time DFS — the paper's headline
//! use case (Fig. 6): run Matrix-TM on the 4×ARM11 floorplan at 500 MHz,
//! watch the die heat past 350 K, then enable the dual-threshold policy and
//! watch it saw-tooth inside the 340–350 K band.
//!
//! Both observations are one [`Scenario`] preset each; the campaign runs
//! them concurrently and reports in input order.
//!
//! ```sh
//! cargo run --release --example thermal_management
//! ```

use temu::{Campaign, Scenario, TemuError};

fn main() -> Result<(), TemuError> {
    let report = Campaign::new()
        .scenario(Scenario::paper_fig6_unmanaged()) // 500 MHz throughout
        .scenario(Scenario::paper_fig6()) // the paper's DFS policy
        .run();

    let mut runs = Vec::new();
    for result in report.results {
        runs.push(result.outcome?);
    }
    let (unmanaged, managed) = (&runs[0], &runs[1]);

    println!("=== without thermal management (500 MHz throughout) ===");
    println!("{}", unmanaged.trace.ascii_plot(70, 14, &[350.0, 340.0]));
    println!("=== with the paper's DFS policy (>350 K -> 100 MHz, <340 K -> 500 MHz) ===");
    println!("{}", managed.trace.ascii_plot(70, 14, &[350.0, 340.0]));

    let peak = |r: &temu::ScenarioRun| r.trace.peak_temp().unwrap_or(f64::NAN);
    println!("peak temperature : {:.2} K vs {:.2} K", peak(unmanaged), peak(managed));
    println!(
        "time above 350 K : {:.3} s vs {:.3} s",
        unmanaged.trace.time_above(350.0),
        managed.trace.time_above(350.0)
    );
    println!("throttled windows: {:.0}%", 100.0 * managed.trace.throttled_fraction());
    println!(
        "work done        : {} vs {} instructions",
        unmanaged.report.aggregate.total_instructions(),
        managed.report.aggregate.total_instructions()
    );
    let csv = managed.trace.to_csv();
    println!("\nCSV of the managed run:\n{}", &csv[..400.min(csv.len())]);
    Ok(())
}
