//! Property tests for the journal replayer: whatever bytes a crash (or
//! the `torn_write` fault) leaves in `jobs.jsonl`, replay must stay
//! total, deterministic, and truthful about which jobs are pending.

use proptest::prelude::*;
use std::collections::HashSet;
use temu_framework::SweepSpec;
use temu_serve::journal::replay;

#[derive(Clone, Copy, Debug)]
struct Op {
    /// 0 = submit, 1 = start, 2+ = terminal (done/failed/cancelled).
    kind: u8,
    id: u64,
    /// Keep the first `trunc`% of the line's bytes (100 = intact).
    trunc: usize,
    /// Write the line twice (a replayed/duplicated record).
    dup: bool,
    /// Drop the trailing newline, gluing the next record onto this line
    /// (what `O_APPEND` does after a torn write).
    glue: bool,
}

fn render(op: &Op, spec_json: &str) -> String {
    match op.kind {
        0 => format!(
            "{{\"op\": \"submit\", \"job\": {}, \"name\": \"p{}\", \"spec\": {spec_json}}}",
            op.id, op.id
        ),
        1 => format!("{{\"op\": \"start\", \"job\": {}}}", op.id),
        2 => format!("{{\"op\": \"done\", \"job\": {}}}", op.id),
        3 => format!("{{\"op\": \"failed\", \"job\": {}}}", op.id),
        _ => format!("{{\"op\": \"cancelled\", \"job\": {}}}", op.id),
    }
}

/// Renders the op list into journal bytes with the sampled corruption.
fn corrupt_text(ops: &[Op], spec_json: &str) -> String {
    let mut text = String::new();
    for op in ops {
        let line = render(op, spec_json);
        let mut repeats = 1 + usize::from(op.dup);
        while repeats > 0 {
            repeats -= 1;
            if op.trunc >= 100 {
                text.push_str(&line);
            } else {
                // Truncate on a char boundary at roughly trunc% of the line.
                let cut = (line.len() * op.trunc / 100).max(1);
                let cut = (1..=cut).rev().find(|&i| line.is_char_boundary(i)).unwrap_or(1);
                text.push_str(&line[..cut]);
            }
            if !op.glue {
                text.push('\n');
            }
        }
    }
    text
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..5, 1u64..6, prop::sample::select(&[7usize, 30, 60, 90, 100, 100, 100]), prop::bool::ANY, prop::bool::ANY)
        .prop_map(|(kind, id, trunc, dup, glue)| Op { kind, id, trunc, dup, glue })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn replay_is_total_and_truthful_over_corrupted_journals(
        ops in prop::collection::vec(op_strategy(), 0..12),
    ) {
        let spec_json = SweepSpec::named("smoke").unwrap().to_json();
        let text = corrupt_text(&ops, &spec_json);

        // Total: no panic on arbitrary tears/duplicates/interleavings,
        // and deterministic.
        let replayed = replay(&text);
        prop_assert_eq!(&replayed, &replay(&text));

        // Pending ids are unique and only ever ids that some submit op
        // could have written.
        let submitted: HashSet<u64> =
            ops.iter().filter(|op| op.kind == 0).map(|op| op.id).collect();
        let mut seen = HashSet::new();
        for job in &replayed.pending {
            prop_assert!(seen.insert(job.id), "duplicate pending id {}", job.id);
            prop_assert!(submitted.contains(&job.id), "pending id {} never submitted", job.id);
            // The recovered spec survived the corruption intact.
            prop_assert_eq!(&job.spec.to_json(), &spec_json);
        }

        // The fresh-id horizon clears every recovered id.
        for job in &replayed.pending {
            prop_assert!(replayed.next_id > job.id);
        }
    }

    #[test]
    fn replay_of_an_intact_journal_is_exact(
        ops in prop::collection::vec(
            (0u8..5, 1u64..6).prop_map(|(kind, id)| Op { kind, id, trunc: 100, dup: false, glue: false }),
            0..14,
        ),
    ) {
        let spec_json = SweepSpec::named("smoke").unwrap().to_json();
        let text = corrupt_text(&ops, &spec_json);
        let replayed = replay(&text);
        prop_assert_eq!(replayed.skipped, 0);

        // Exactly the submitted-but-never-terminal ids, in first-submit
        // order; started-ness reflects any start record.
        let terminal: HashSet<u64> =
            ops.iter().filter(|op| op.kind >= 2).map(|op| op.id).collect();
        let started: HashSet<u64> =
            ops.iter().filter(|op| op.kind == 1).map(|op| op.id).collect();
        let mut expected: Vec<u64> = Vec::new();
        for op in &ops {
            if op.kind == 0 && !terminal.contains(&op.id) && !expected.contains(&op.id) {
                expected.push(op.id);
            }
        }
        let got: Vec<u64> = replayed.pending.iter().map(|j| j.id).collect();
        prop_assert_eq!(got, expected);
        for job in &replayed.pending {
            prop_assert_eq!(job.was_running, started.contains(&job.id));
        }
    }
}
