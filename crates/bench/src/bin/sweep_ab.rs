//! A/B benchmark of the sweep execution paths, tracked as
//! `BENCH_sweep.json`.
//!
//! For each named preset (default: `explore` and `grid100`) the same grid
//! runs three ways on one thread:
//!
//! * `per_point` — every point built from scratch (`Scenario::run`):
//!   floorplan, mesh, multigrid hierarchy and workload program are
//!   rederived per point, exactly what every sweep paid before the
//!   artifact cache existed;
//! * `campaign` — the sweep engine's default path: one sweep-scoped
//!   [`ArtifactCache`](temu_framework::ArtifactCache) shares those builds
//!   across points, each point stepped alone;
//! * `batch` — the cached path plus lockstep fusion: points sharing a
//!   thermal operator advance through the many-RHS kernel together.
//!
//! Each leg is timed over several repetitions (median wall). The run
//! **fails** unless every leg produces bitwise-identical peak/final
//! temperatures for every point — the golden equivalence gate for the
//! batched kernel, enforced on the real presets, not a toy grid.
//!
//! Flags:
//!   --reps <n>    repetitions per leg (default 5)
//!   --out <path>  output path (default BENCH_sweep.json)

use std::time::Instant;
use temu_framework::{Sweep, SweepReport, SweepSpec};

struct Leg {
    wall_s: f64,
    report: SweepReport,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn build(name: &str) -> Sweep {
    SweepSpec::named(name)
        .unwrap_or_else(|| panic!("no preset named {name}"))
        .lower()
        .unwrap_or_else(|e| panic!("preset {name} must lower: {e}"))
        .threads(1)
}

/// One timed pass of the pre-artifact-cache baseline: run every point as
/// a standalone scenario, rebuilding all of its artifacts.
fn time_per_point(name: &str) -> f64 {
    let t0 = Instant::now();
    let points = build(name).expand();
    for p in &points {
        let scenario = p.scenario.as_ref().expect("preset points are valid");
        scenario.run().expect("preset points succeed");
    }
    t0.elapsed().as_secs_f64()
}

fn time_engine(name: &str, batch: bool) -> (f64, SweepReport) {
    let t0 = Instant::now();
    let r = build(name).batch(batch).run();
    let wall = t0.elapsed().as_secs_f64();
    assert!(r.all_ok(), "{name} (batch={batch}) failed:\n{}", r.to_json());
    (wall, r)
}

/// Times all three legs over `reps` interleaved rounds (so slow drift in
/// host state biases no single leg) and returns them by median wall.
fn run_legs(name: &str, reps: usize) -> (Leg, Leg, Leg) {
    let mut pp_walls = Vec::new();
    let mut camp_walls = Vec::new();
    let mut batch_walls = Vec::new();
    let mut camp_report = None;
    let mut batch_report = None;
    for _ in 0..reps {
        pp_walls.push(time_per_point(name));
        let (w, r) = time_engine(name, false);
        camp_walls.push(w);
        camp_report = Some(r);
        let (w, r) = time_engine(name, true);
        batch_walls.push(w);
        batch_report = Some(r);
    }
    // The per-point comparison summaries come from the engine itself
    // (untimed), so all three legs diff identical report shapes.
    let pp_report = build(name).run();
    (
        Leg { wall_s: median(pp_walls), report: pp_report },
        Leg { wall_s: median(camp_walls), report: camp_report.expect("reps >= 1") },
        Leg { wall_s: median(batch_walls), report: batch_report.expect("reps >= 1") },
    )
}

/// Every point of `a` and `b` must agree bitwise on the temperature
/// fields — the golden equivalence gate.
fn assert_golden(name: &str, what: &str, a: &SweepReport, b: &SweepReport) {
    assert_eq!(a.points.len(), b.points.len());
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.key, y.key, "{name}/{what}: point order diverged");
        let (s, t) = (x.outcome.as_ref().unwrap(), y.outcome.as_ref().unwrap());
        assert_eq!(s.windows, t.windows, "{name}/{what}/{}", x.label);
        assert_eq!(
            s.peak_temp_k.map(f64::to_bits),
            t.peak_temp_k.map(f64::to_bits),
            "{name}/{what}/{}: peak temperature must be bitwise-identical",
            x.label
        );
        assert_eq!(
            s.final_temp_k.map(f64::to_bits),
            t.final_temp_k.map(f64::to_bits),
            "{name}/{what}/{}: final temperature must be bitwise-identical",
            x.label
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut reps = 5usize;
    let mut out = String::from("BENCH_sweep.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--reps" => {
                reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps takes a positive integer");
            }
            "--out" => out = it.next().expect("--out takes a path").clone(),
            other => panic!("unknown flag {other} (supported: --reps <n>, --out <path>)"),
        }
    }

    let mut rows = String::new();
    let presets = ["explore", "grid100"];
    for (i, name) in presets.iter().enumerate() {
        println!("{name}: timing {reps} interleaved rep(s) per leg on one thread");
        let (per_point, campaign, batch) = run_legs(name, reps);
        assert_golden(name, "campaign-vs-per-point", &per_point.report, &campaign.report);
        assert_golden(name, "batch-vs-campaign", &campaign.report, &batch.report);

        let a = batch.report.artifacts;
        let speedup_cache = per_point.wall_s / campaign.wall_s;
        let speedup_batch = per_point.wall_s / batch.wall_s;
        println!(
            "  per_point {:.4} s   campaign {:.4} s ({speedup_cache:.2}x)   batch {:.4} s ({speedup_batch:.2}x)   [golden: bitwise-identical]",
            per_point.wall_s, campaign.wall_s, batch.wall_s
        );
        rows.push_str(&format!(
            "    {{\"sweep\": \"{name}\", \"points\": {}, \"reps\": {reps}, \
             \"per_point_wall_s\": {:.6}, \"campaign_wall_s\": {:.6}, \"batch_wall_s\": {:.6}, \
             \"speedup_campaign_vs_per_point\": {speedup_cache:.3}, \
             \"speedup_batch_vs_per_point\": {speedup_batch:.3}, \
             \"golden_bitwise\": true, \
             \"mesh_builds\": {}, \"mesh_hits\": {}, \"operator_builds\": {}, \"operator_hits\": {}}}{}\n",
            batch.report.points.len(),
            per_point.wall_s,
            campaign.wall_s,
            batch.wall_s,
            a.mesh_misses,
            a.mesh_hits,
            a.operator_misses,
            a.operator_hits,
            if i + 1 < presets.len() { "," } else { "" },
        ));
    }

    let json = format!(
        "{{\n  \"host_cores\": {},\n  \"threads\": 1,\n  \"rows\": [\n{rows}  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    std::fs::write(&out, json).expect("write report");
    println!("wrote {out}");
}
