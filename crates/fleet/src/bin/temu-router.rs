//! The fleet router.
//!
//! ```sh
//! temu-router [--addr 127.0.0.1:7182] --member HOST:PORT [--member HOST:PORT ...] \
//!             [--probe-ms N]
//! ```
//!
//! Binds, prints the resolved address (`--addr 127.0.0.1:0` requests an
//! ephemeral port — scripts parse the printed line), and routes the
//! `temu-serve` protocol across the member table until a client sends
//! `shutdown` (members keep running). See the `temu-fleet` crate docs
//! for the sharding and failover model.

use std::process::exit;
use std::time::Duration;
use temu_fleet::{Router, RouterConfig};

const USAGE: &str =
    "usage: temu-router [--addr HOST:PORT] --member HOST:PORT [--member HOST:PORT ...] [--probe-ms N]";

fn main() {
    let mut config = RouterConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} takes {what}\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("an address"),
            "--member" => config.members.push(value("an address")),
            "--probe-ms" => {
                let ms: u64 = value("a millisecond count").parse().unwrap_or_else(|_| {
                    eprintln!("--probe-ms takes a positive integer\n{USAGE}");
                    exit(2);
                });
                config.probe_interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }
    let members = config.members.clone();
    let router = match Router::bind(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("temu-router: {e}\n{USAGE}");
            exit(2);
        }
    };
    match router.local_addr() {
        Ok(addr) => println!("temu-router listening on {addr}"),
        Err(e) => {
            eprintln!("temu-router: no local address: {e}");
            exit(1);
        }
    }
    println!("fleet: {} member(s)", members.len());
    for member in &members {
        println!("  member {member}");
    }
    router.run();
    println!("temu-router: shut down");
}
