//! Criterion benchmarks of the memory-hierarchy hot paths (cache lookups and
//! bus arbitration dominate the emulator's per-access cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use temu_interconnect::{Bus, BusConfig, Interconnect, Request};
use temu_mem::{AccessKind, Cache, CacheConfig, CacheKind};

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_paths");
    group.throughput(Throughput::Elements(1));

    group.bench_function("cache_hit", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1_4k(), CacheKind::Data);
        cache.access(0x100, AccessKind::Read);
        b.iter(|| cache.access(0x100, AccessKind::Read))
    });

    group.bench_function("cache_conflict_miss", |b| {
        let mut cache = Cache::new(CacheConfig::paper_l1_4k(), CacheKind::Data);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            cache.access(if flip { 0x0 } else { 0x1000 }, AccessKind::Read)
        })
    });

    group.bench_function("bus_transact", |b| {
        let mut bus = Bus::new(BusConfig::opb(4));
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            bus.transact(&Request::word_read(0, 0x1000_0000, t), 6)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_memory);
criterion_main!(benches);
