//! Transient RC solver with non-linear silicon conductivity.

use crate::floorplan::{ComponentId, Floorplan};
use crate::grid::{GridConfig, Integrator, ThermalGrid};
use crate::props::{silicon_conductivity, COPPER_CONDUCTIVITY};

/// The thermal model: a meshed floorplan plus its temperature state and the
/// per-component power inputs.
///
/// Integration is explicit with an automatically chosen stability-bounded
/// substep; cost per substep is linear in the number of cells (each cell
/// interacts only with its neighbours, §5.2).
#[derive(Clone, Debug)]
pub struct ThermalModel {
    grid: ThermalGrid,
    temps: Vec<f64>,
    comp_power: Vec<f64>,
    cell_power: Vec<f64>,
    k_cell: Vec<f64>,
    flow: Vec<f64>,
    /// Per-cell neighbour list: `(other cell, edge index)` — Gauss–Seidel
    /// sweeps need cell-major access to the edge set.
    nbr: Vec<Vec<(u32, u32)>>,
    /// Convection entry index per cell, if it has one.
    conv_of: Vec<Option<u32>>,
    g_edge: Vec<f64>,
    work: Vec<f64>,
    time: f64,
    energy_in: f64,
    energy_out: f64,
}

impl ThermalModel {
    /// Meshes `fp` and initializes every cell at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns a message if the grid configuration is invalid.
    pub fn new(fp: &Floorplan, cfg: &GridConfig) -> Result<ThermalModel, String> {
        let grid = ThermalGrid::build(fp, cfg)?;
        let n = grid.n_cells();
        let mut nbr = vec![Vec::new(); n];
        for (ei, e) in grid.edges.iter().enumerate() {
            nbr[e.a].push((e.b as u32, ei as u32));
            nbr[e.b].push((e.a as u32, ei as u32));
        }
        let mut conv_of = vec![None; n];
        for (ci, &(cell, _, _)) in grid.convection.iter().enumerate() {
            conv_of[cell] = Some(ci as u32);
        }
        Ok(ThermalModel {
            temps: vec![cfg.ambient_k; n],
            comp_power: vec![0.0; grid.comp_cells.len()],
            cell_power: vec![0.0; n],
            k_cell: vec![0.0; n],
            flow: vec![0.0; n],
            nbr,
            conv_of,
            g_edge: vec![0.0; grid.edges.len()],
            work: vec![cfg.ambient_k; n],
            time: 0.0,
            energy_in: 0.0,
            energy_out: 0.0,
            grid,
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &ThermalGrid {
        &self.grid
    }

    /// Simulated seconds elapsed.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Sets a component's dissipated power in watts (injected as equivalent
    /// current sources on its bottom-surface cells, weighted by area).
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or not finite.
    pub fn set_component_power(&mut self, comp: ComponentId, power_w: f64) {
        assert!(power_w >= 0.0 && power_w.is_finite(), "power must be a finite non-negative number");
        self.comp_power[comp] = power_w;
        // Bottom-layer cell index == tile index (layer 0 comes first).
        for &(tile, frac) in &self.grid.comp_cells[comp] {
            self.cell_power[tile] = power_w * frac;
        }
    }

    /// Sets all component powers at once.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the component count.
    pub fn set_powers(&mut self, powers_w: &[f64]) {
        assert_eq!(powers_w.len(), self.comp_power.len(), "one power value per floorplan component");
        for (c, &p) in powers_w.iter().enumerate() {
            self.set_component_power(c, p);
        }
    }

    /// Total power currently injected, W.
    pub fn total_power(&self) -> f64 {
        self.comp_power.iter().sum()
    }

    /// Cell temperatures (layer-major: bottom silicon first).
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Hottest cell temperature, K.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell temperature, K.
    pub fn min_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Area-weighted mean temperature of a component's bottom cells — what
    /// the platform's temperature sensor for that component reads.
    pub fn component_temp(&self, comp: ComponentId) -> f64 {
        let cells = &self.grid.comp_cells[comp];
        let mut acc = 0.0;
        let mut total = 0.0;
        for &(tile, frac) in cells {
            acc += self.temps[tile] * frac;
            total += frac;
        }
        acc / total.max(f64::MIN_POSITIVE)
    }

    /// Hottest bottom cell of a component.
    pub fn component_max_temp(&self, comp: ComponentId) -> f64 {
        self.grid.comp_cells[comp]
            .iter()
            .map(|&(tile, _)| self.temps[tile])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Temperatures of every component (sensor vector for the platform).
    pub fn component_temps(&self) -> Vec<f64> {
        (0..self.comp_power.len()).map(|c| self.component_temp(c)).collect()
    }

    /// Energy injected since construction, J.
    pub fn energy_in(&self) -> f64 {
        self.energy_in
    }

    /// Energy convected to ambient since construction, J.
    pub fn energy_out(&self) -> f64 {
        self.energy_out
    }

    /// Heat currently stored relative to ambient, J (`Σ C_i (T_i - T_amb)`).
    pub fn stored_energy(&self) -> f64 {
        let amb = self.grid.cfg.ambient_k;
        self.temps.iter().zip(&self.grid.capacity).map(|(&t, &c)| c * (t - amb)).sum()
    }

    fn conductivity(&self, cell: usize, temp: f64) -> f64 {
        if self.grid.is_silicon(cell) {
            match self.grid.cfg.silicon_k_override {
                Some(k) => k,
                None => silicon_conductivity(temp),
            }
        } else {
            COPPER_CONDUCTIVITY
        }
    }

    /// Largest stable explicit substep for the current temperature field.
    pub fn stable_dt(&mut self) -> f64 {
        for i in 0..self.temps.len() {
            self.k_cell[i] = self.conductivity(i, self.temps[i]);
        }
        let mut g_sum = vec![0.0f64; self.temps.len()];
        for e in &self.grid.edges {
            let g = 1.0 / (e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b]);
            g_sum[e.a] += g;
            g_sum[e.b] += g;
        }
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            let r = r_pkg + g_half / self.k_cell[cell];
            g_sum[cell] += 1.0 / r;
        }
        let mut dt = f64::INFINITY;
        for (i, &g) in g_sum.iter().enumerate() {
            if g > 0.0 {
                dt = dt.min(self.grid.capacity[i] / g);
            }
        }
        dt * 0.3
    }

    /// Advances the model by `seconds`, substepping for stability.
    ///
    /// The non-linear silicon conductivity is refreshed every few substeps
    /// rather than every substep: the temperature drift across one stable
    /// explicit substep is micro-kelvins, so the lagged coefficients change
    /// the trajectory by far less than the discretization error while
    /// keeping the per-substep cost at "edges + cells" additions — this is
    /// what makes the §5.2 real-time budget (2 s of simulation on a 660-cell
    /// floorplan in under 2 s of host time) hold.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn step(&mut self, seconds: f64) {
        assert!(seconds >= 0.0 && seconds.is_finite(), "step duration must be finite and non-negative");
        if seconds == 0.0 {
            return;
        }
        match self.grid.cfg.integrator {
            Integrator::Explicit => {
                let dt_max = self.stable_dt();
                let n_sub = (seconds / dt_max).ceil().max(1.0) as u64;
                let dt = seconds / n_sub as f64;
                const K_REFRESH: u64 = 16;
                for n in 0..n_sub {
                    if n % K_REFRESH == 0 {
                        for i in 0..self.temps.len() {
                            self.k_cell[i] = self.conductivity(i, self.temps[i]);
                        }
                    }
                    self.substep(dt);
                }
            }
            Integrator::SemiImplicit { dt } => {
                let n_sub = (seconds / dt).ceil().max(1.0) as u64;
                let h = seconds / n_sub as f64;
                for _ in 0..n_sub {
                    self.implicit_substep(h);
                }
            }
        }
    }

    /// One backward-Euler substep: solve
    /// `(C/h + G) T' = C/h * T + P + G_conv * T_amb` by Gauss–Seidel with
    /// conductivities lagged at the current temperature. The system matrix
    /// is strictly diagonally dominant, so the sweeps converge
    /// unconditionally.
    fn implicit_substep(&mut self, h: f64) {
        let amb = self.grid.cfg.ambient_k;
        for i in 0..self.temps.len() {
            self.k_cell[i] = self.conductivity(i, self.temps[i]);
        }
        for (gi, e) in self.grid.edges.iter().enumerate() {
            self.g_edge[gi] = 1.0 / (e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b]);
        }
        self.work.copy_from_slice(&self.temps);
        for _sweep in 0..60 {
            let mut max_delta = 0.0f64;
            for i in 0..self.work.len() {
                let c_over_h = self.grid.capacity[i] / h;
                let mut num = c_over_h * self.temps[i] + self.cell_power[i];
                let mut diag = c_over_h;
                for &(j, gi) in &self.nbr[i] {
                    let g = self.g_edge[gi as usize];
                    num += g * self.work[j as usize];
                    diag += g;
                }
                if let Some(ci) = self.conv_of[i] {
                    let (_, r_pkg, g_half) = self.grid.convection[ci as usize];
                    let g = 1.0 / (r_pkg + g_half / self.k_cell[i]);
                    num += g * amb;
                    diag += g;
                }
                let new = num / diag;
                max_delta = max_delta.max((new - self.work[i]).abs());
                self.work[i] = new;
            }
            // Sub-tenth-of-a-microkelvin per substep is far below both the
            // discretization error and the sensor quantization.
            if max_delta < 1e-7 {
                break;
            }
        }
        // Energy bookkeeping on the converged state.
        let mut out = 0.0;
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            out += (self.work[cell] - amb) / (r_pkg + g_half / self.k_cell[cell]);
        }
        self.energy_out += out * h;
        self.energy_in += self.total_power() * h;
        std::mem::swap(&mut self.temps, &mut self.work);
        self.time += h;
    }

    fn substep(&mut self, dt: f64) {
        let amb = self.grid.cfg.ambient_k;
        self.flow.copy_from_slice(&self.cell_power);
        for e in &self.grid.edges {
            let r = e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b];
            let q = (self.temps[e.a] - self.temps[e.b]) / r;
            self.flow[e.a] -= q;
            self.flow[e.b] += q;
        }
        let mut out = 0.0;
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            let r = r_pkg + g_half / self.k_cell[cell];
            let q = (self.temps[cell] - amb) / r;
            self.flow[cell] -= q;
            out += q;
        }
        for i in 0..self.temps.len() {
            self.temps[i] += self.flow[i] * dt / self.grid.capacity[i];
        }
        self.energy_in += self.total_power() * dt;
        self.energy_out += out * dt;
        self.time += dt;
    }

    /// Runs until the hottest cell changes by less than `tol_k_per_s` kelvin
    /// per second (or `max_seconds` elapse). Returns the simulated seconds it
    /// took.
    pub fn run_to_steady(&mut self, max_seconds: f64, tol_k_per_s: f64) -> f64 {
        let start = self.time;
        let probe = 0.05; // seconds between convergence checks
        while self.time - start < max_seconds {
            let before = self.max_temp();
            self.step(probe);
            let rate = (self.max_temp() - before).abs() / probe;
            if rate < tol_k_per_s {
                break;
            }
        }
        self.time - start
    }

    /// Jumps directly to the steady state of the current power vector by
    /// relaxing the network with the capacitive terms removed (backward
    /// Euler with an effectively infinite step). Simulated time does not
    /// advance; energy counters are untouched. Useful for worst-case
    /// floorplan screening before running transients.
    pub fn solve_steady_state(&mut self) {
        // March with steps much longer than the package time constant: the
        // capacitive diagonal keeps Gauss-Seidel contracting per step while
        // each step closes most of the remaining distance, and the lagged
        // non-linear conductivities settle along the way.
        let saved_time = self.time;
        let (saved_in, saved_out) = (self.energy_in, self.energy_out);
        for _ in 0..64 {
            let before = self.max_temp();
            self.implicit_substep(50.0);
            if (self.max_temp() - before).abs() < 1e-6 {
                break;
            }
        }
        self.time = saved_time;
        self.energy_in = saved_in;
        self.energy_out = saved_out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::reference::analytic_stack_temp;

    fn uniform(power: f64, cfg: &GridConfig) -> ThermalModel {
        let mut fp = Floorplan::new("u", 2000.0, 2000.0);
        let c = fp.add_component("all", 0.0, 0.0, 2000.0, 2000.0, false);
        let mut m = ThermalModel::new(&fp, cfg).unwrap();
        m.set_component_power(c, power);
        m
    }

    #[test]
    fn starts_at_ambient() {
        let m = uniform(0.0, &GridConfig::default());
        assert_eq!(m.max_temp(), 300.0);
        assert_eq!(m.min_temp(), 300.0);
        assert_eq!(m.time(), 0.0);
    }

    #[test]
    fn no_power_stays_at_ambient() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.step(0.5);
        assert!((m.max_temp() - 300.0).abs() < 1e-9);
        assert!((m.min_temp() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn heating_is_monotone_and_bottom_is_hottest() {
        let mut m = uniform(2.0, &GridConfig::default());
        let mut prev = 300.0;
        for _ in 0..5 {
            m.step(0.05);
            let t = m.max_temp();
            assert!(t > prev, "temperature rises under constant power");
            prev = t;
        }
        // Heat is injected at the bottom: the bottom silicon layer must be
        // the hottest region.
        let n_tiles = m.grid().n_tiles();
        let bottom_max = m.temps()[..n_tiles].iter().copied().fold(f64::MIN, f64::max);
        assert!((bottom_max - m.max_temp()).abs() < 1e-9);
    }

    #[test]
    fn energy_conservation_adiabatic() {
        // Forward Euler injects exactly P*dt per substep, so stored energy
        // must match injected energy to rounding.
        let cfg = GridConfig {
            package_to_air: f64::INFINITY,
            integrator: Integrator::Explicit,
            ..GridConfig::default()
        };
        let mut m = uniform(3.0, &cfg);
        m.step(0.2);
        let injected = m.energy_in();
        let stored = m.stored_energy();
        assert!((injected - 3.0 * 0.2).abs() < 1e-9);
        assert!(
            ((stored - injected) / injected).abs() < 1e-6,
            "stored {stored} J vs injected {injected} J"
        );
    }

    #[test]
    fn steady_state_energy_balance() {
        let mut m = uniform(2.0, &GridConfig::default());
        m.run_to_steady(50.0, 0.01);
        // At steady state, the convected flow equals the injected power:
        // check via a short window's energy deltas.
        let in0 = m.energy_in();
        let out0 = m.energy_out();
        m.step(0.1);
        let din = m.energy_in() - in0;
        let dout = m.energy_out() - out0;
        assert!((din - dout).abs() / din < 0.01, "in {din} J vs out {dout} J over the window");
    }

    #[test]
    fn uniform_steady_state_matches_analytic_stack() {
        // Linear silicon so the 1-D closed form is exact.
        let cfg = GridConfig {
            silicon_k_override: Some(120.0),
            default_div: 2,
            ..GridConfig::default()
        };
        let mut m = uniform(2.0, &cfg);
        m.run_to_steady(200.0, 1e-3);
        let die_area = 2e-3 * 2e-3;
        let expect = analytic_stack_temp(2.0, die_area, &cfg, 120.0);
        let got = m.component_temp(0);
        assert!(
            (got - expect).abs() < 0.05,
            "bottom temperature {got:.3} K vs analytic {expect:.3} K"
        );
    }

    #[test]
    fn nonlinear_silicon_runs_hotter_than_linear_at_high_power() {
        // k(T) drops as T rises, so the non-linear die must end up hotter
        // than a linear one evaluated at the 300 K conductivity.
        let linear = GridConfig { silicon_k_override: Some(150.0), ..GridConfig::default() };
        let nonlinear = GridConfig::default();
        let mut a = uniform(8.0, &linear);
        let mut b = uniform(8.0, &nonlinear);
        a.run_to_steady(100.0, 0.01);
        b.run_to_steady(100.0, 0.01);
        assert!(b.max_temp() > a.max_temp());
    }

    #[test]
    fn symmetric_floorplan_heats_symmetrically() {
        let mut fp = Floorplan::new("sym", 4000.0, 2000.0);
        let l = fp.add_component("left", 0.0, 0.0, 1000.0, 2000.0, true);
        let r = fp.add_component("right", 3000.0, 0.0, 1000.0, 2000.0, true);
        let mut m = ThermalModel::new(&fp, &GridConfig::default()).unwrap();
        m.set_component_power(l, 1.0);
        m.set_component_power(r, 1.0);
        m.step(0.5);
        // Gauss-Seidel sweep order breaks exactness at the solver tolerance;
        // anything below a micro-kelvin is symmetric for every physical
        // purpose.
        assert!((m.component_temp(l) - m.component_temp(r)).abs() < 1e-5);
    }

    #[test]
    fn hotter_component_reads_hotter_sensor() {
        let mut fp = Floorplan::new("two", 4000.0, 2000.0);
        let busy = fp.add_component("busy", 0.0, 0.0, 1000.0, 2000.0, true);
        let idle = fp.add_component("idle", 3000.0, 0.0, 1000.0, 2000.0, true);
        let mut m = ThermalModel::new(&fp, &GridConfig::default()).unwrap();
        m.set_component_power(busy, 2.0);
        m.set_component_power(idle, 0.1);
        m.step(1.0);
        assert!(m.component_temp(busy) > m.component_temp(idle) + 1.0);
        let temps = m.component_temps();
        assert!((temps[busy] - m.component_temp(busy)).abs() < 1e-12);
    }

    #[test]
    fn refinement_insensitivity() {
        // The component sensor reading must be stable under mesh refinement:
        // every coarser mesh stays within a degree of the finest one on a
        // ~50 K rise (the role the paper's FE calibration played).
        let mut fp = Floorplan::new("c", 3000.0, 3000.0);
        fp.add_component("cpu", 1000.0, 1000.0, 1000.0, 1000.0, true);
        let mut temps = Vec::new();
        for div in [1usize, 2, 4, 6] {
            let cfg = GridConfig { hot_div: div, filler_pitch_um: 750.0, ..GridConfig::default() };
            let mut m = ThermalModel::new(&fp, &cfg).unwrap();
            m.set_component_power(0, 1.5);
            m.run_to_steady(100.0, 0.01);
            temps.push(m.component_temp(0));
        }
        let finest = *temps.last().unwrap();
        assert!(finest > 320.0, "the component heated up: {finest:.1} K");
        for (i, t) in temps.iter().enumerate() {
            assert!((t - finest).abs() < 1.0, "mesh {i}: {t:.3} K vs finest {finest:.3} K");
        }
    }

    #[test]
    fn semi_implicit_matches_explicit_trajectory() {
        // The two integrators must agree on a heating transient to within a
        // small fraction of the temperature rise.
        let explicit = GridConfig { integrator: Integrator::Explicit, ..GridConfig::default() };
        let implicit = GridConfig { integrator: Integrator::SemiImplicit { dt: 2e-4 }, ..GridConfig::default() };
        let mut a = uniform(3.0, &explicit);
        let mut b = uniform(3.0, &implicit);
        for _ in 0..10 {
            a.step(0.01);
            b.step(0.01);
            let rise = a.max_temp() - 300.0;
            let diff = (a.max_temp() - b.max_temp()).abs();
            assert!(diff < 0.02 + 0.02 * rise, "explicit {:.4} K vs implicit {:.4} K", a.max_temp(), b.max_temp());
        }
    }

    #[test]
    fn semi_implicit_energy_balance_approximate() {
        // Backward Euler + Gauss-Seidel conserves energy to solver tolerance.
        let cfg = GridConfig { package_to_air: f64::INFINITY, ..GridConfig::default() };
        let mut m = uniform(3.0, &cfg);
        m.step(0.2);
        let injected = m.energy_in();
        let stored = m.stored_energy();
        assert!(((stored - injected) / injected).abs() < 1e-3, "stored {stored} J vs injected {injected} J");
    }

    #[test]
    fn semi_implicit_is_stable_with_huge_steps() {
        let cfg = GridConfig { integrator: Integrator::SemiImplicit { dt: 0.05 }, ..GridConfig::default() };
        let mut m = uniform(5.0, &cfg);
        m.step(5.0);
        assert!(m.max_temp().is_finite());
        assert!(m.max_temp() > 300.0 && m.max_temp() < 600.0, "no blow-up: {}", m.max_temp());
    }

    #[test]
    fn solve_steady_state_matches_transient_limit() {
        let cfg = GridConfig { silicon_k_override: Some(120.0), ..GridConfig::default() };
        let mut direct = uniform(2.0, &cfg);
        direct.solve_steady_state();
        assert_eq!(direct.time(), 0.0, "no simulated time consumed");
        let mut transient = uniform(2.0, &cfg);
        transient.run_to_steady(200.0, 1e-3);
        assert!(
            (direct.component_temp(0) - transient.component_temp(0)).abs() < 0.05,
            "direct {:.3} K vs transient {:.3} K",
            direct.component_temp(0),
            transient.component_temp(0)
        );
        let die_area = 2e-3 * 2e-3;
        let analytic = analytic_stack_temp(2.0, die_area, &cfg, 120.0);
        assert!((direct.component_temp(0) - analytic).abs() < 0.05);
    }

    #[test]
    fn power_update_replaces_previous_injection() {
        let mut m = uniform(5.0, &GridConfig::default());
        m.set_component_power(0, 1.0);
        assert!((m.total_power() - 1.0).abs() < 1e-12, "power is replaced, not accumulated");
    }

    #[test]
    fn cooling_after_power_off() {
        let mut m = uniform(4.0, &GridConfig::default());
        m.step(1.0);
        let hot = m.max_temp();
        m.set_component_power(0, 0.0);
        m.step(5.0);
        assert!(m.max_temp() < hot, "die cools once power is removed");
        assert!(m.max_temp() >= 300.0 - 1e-6, "never below ambient");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_power_panics() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.set_component_power(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "one power value per floorplan component")]
    fn wrong_power_vector_length_panics() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.set_powers(&[1.0, 2.0]);
    }
}
