//! Exercises the multi-worker sweep machinery regardless of host core
//! count: forces a 4-worker pool (integration tests get their own process,
//! so the env var is set before the pool's first use) and checks the
//! parallel paths against the reference trajectory.

use temu_thermal::{Floorplan, GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalModel};

/// Sets the pool-width override exactly once for this test binary: two
/// tests each calling `set_var` could race each other (and the pool's
/// first `getenv`) across threads, which is undefined behavior on glibc.
fn force_four_workers() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::set_var("TEMU_THERMAL_THREADS", "4"));
}

fn model(sweep: SweepMode, integrator: Integrator) -> ThermalModel {
    model_with(sweep, integrator, ImplicitSolve::GaussSeidel)
}

fn model_with(sweep: SweepMode, integrator: Integrator, solve: ImplicitSolve) -> ThermalModel {
    let mut fp = Floorplan::new("fp", 4000.0, 4000.0);
    fp.add_component("hot", 500.0, 500.0, 1500.0, 1500.0, true);
    fp.add_component("cool", 2500.0, 2500.0, 1000.0, 1000.0, false);
    let cfg = GridConfig { sweep, integrator, implicit_solve: solve, ..GridConfig::default() };
    let mut m = ThermalModel::new(&fp, &cfg).unwrap();
    m.set_powers(&[3.0, 0.5]);
    m
}

#[test]
fn forced_four_worker_pool_matches_reference() {
    force_four_workers();
    for integrator in [Integrator::SemiImplicit { dt: 5e-4 }, Integrator::Explicit] {
        let mut reference = model(SweepMode::Reference, integrator);
        let mut parallel = model(SweepMode::Parallel, integrator);
        assert!(parallel.uses_parallel_sweeps());
        for _ in 0..10 {
            reference.step(0.01);
            parallel.step(0.01);
        }
        let drift = reference
            .temps()
            .iter()
            .zip(parallel.temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-4, "4-worker drift {drift:.2e} K ({integrator:?})");
        // Determinism under forced threading: same inputs, same trajectory.
        let mut again = model(SweepMode::Parallel, integrator);
        for _ in 0..10 {
            again.step(0.01);
        }
        assert_eq!(again.temps(), parallel.temps());
    }
}

#[test]
fn forced_parallel_multigrid_matches_reference() {
    // Multigrid smoothing on the 4-worker pool: same contract as the plain
    // colored sweeps, and every substep converges.
    force_four_workers();
    let integrator = Integrator::SemiImplicit { dt: 5e-4 };
    let mut reference = model(SweepMode::Reference, integrator);
    let mut mg = model_with(SweepMode::Parallel, integrator, ImplicitSolve::Multigrid);
    assert!(mg.uses_parallel_sweeps() && mg.uses_multigrid());
    for _ in 0..10 {
        reference.step(0.01);
        mg.step(0.01);
    }
    let drift = reference
        .temps()
        .iter()
        .zip(mg.temps())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(drift < 1e-4, "4-worker multigrid drift {drift:.2e} K");
    assert_eq!(mg.solver_stats().unconverged_substeps, 0);

    let mut again = model_with(SweepMode::Parallel, integrator, ImplicitSolve::Multigrid);
    for _ in 0..10 {
        again.step(0.01);
    }
    assert_eq!(again.temps(), mg.temps(), "deterministic under forced threading");
}
