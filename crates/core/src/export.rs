//! Shared CSV/JSON serialization helpers for the report exporters
//! ([`crate::CampaignReport`], [`crate::ThermalTrace`],
//! [`crate::SweepReport`]) and the [`JsonValue`] reader behind the wire
//! formats ([`crate::ScenarioSpec`]/[`crate::SweepSpec`] and the
//! [`crate::ResultCache`] disk store).
//!
//! The framework hand-rolls its exports (no external dependencies), so the
//! escaping rules live in exactly one place: CSV fields are quoted whenever
//! they contain a separator, quote, or line break (`\r` included — a bare
//! carriage return splits a record under RFC 4180 just like `\n`), and every
//! floating-point JSON value is emitted as a number only when finite
//! (`NaN`/`inf` are not valid JSON). Reading goes through [`JsonValue`]: a
//! small recursive-descent parser that grew out of the result store's flat
//! line reader when the spec wire format needed nested objects and arrays.

use std::fmt;

/// Quotes a CSV field when it contains separators, quotes, or line breaks.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A float as a CSV field, empty when not finite.
pub(crate) fn csv_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        String::new()
    }
}

/// An optional float as a CSV field, empty when absent or not finite.
pub(crate) fn csv_opt(v: Option<f64>) -> String {
    v.filter(|x| x.is_finite()).map_or_else(String::new, |x| format!("{x:.3}"))
}

/// Escapes a string for inclusion inside a JSON string literal (public:
/// the `temu-serve` wire protocol hand-rolls its frames with the same
/// rules the report exporters use).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON number with `decimals` places, or `null` when it is
/// not finite (bare `NaN`/`inf` are not valid JSON).
pub(crate) fn json_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        String::from("null")
    }
}

/// `prefix` followed by the float as a JSON number, or by `null` when the
/// value is absent or not finite.
pub(crate) fn json_num_or_null(prefix: &str, v: Option<f64>) -> String {
    match v.filter(|x| x.is_finite()) {
        Some(x) => format!("{prefix}{x:.3}"),
        None => format!("{prefix}null"),
    }
}

// ---------------------------------------------------------------------------
// JsonValue: the reading half of the hand-rolled JSON layer
// ---------------------------------------------------------------------------

/// One parsed JSON value.
///
/// This is the reader behind every wire format in the workspace — the
/// [`crate::ResultCache`] store lines, the [`crate::ScenarioSpec`] /
/// [`crate::SweepSpec`] experiment specs, and the `temu-serve` protocol
/// frames. Objects keep their key order (a `Vec` of pairs, not a map), so
/// a parse → inspect → re-render round trip is deterministic.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers above 2^53 lose precision, like every
    /// f64-backed JSON reader).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

/// Nesting cap of the parser: deeper input is rejected instead of
/// recursing toward a stack overflow (the server parses untrusted bytes).
const MAX_JSON_DEPTH: usize = 64;

impl JsonValue {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error (one NDJSON line holds exactly one value).
    ///
    /// # Errors
    ///
    /// A human-readable description with the byte offset of the problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number in range (the bound is exclusive: 1.8446744073709552e19 is
    /// exactly 2^64, the first value the `as` cast would saturate).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 1.8446744073709552e19 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer, if it is a whole number in range
    /// (bounds exclusive on the positive side for the same saturation
    /// reason as [`JsonValue::as_u64`]).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Num(n)
                if n.fract() == 0.0
                    && *n >= -9.223372036854776e18
                    && *n < 9.223372036854776e18 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a whole non-negative number that
    /// fits.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields in source order, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

impl fmt::Display for JsonValue {
    /// Renders the value back as compact single-line JSON (non-finite
    /// numbers degrade to `null`, like every exporter in the workspace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) if n.is_finite() => write!(f, "{n}"),
            JsonValue::Num(_) => f.write_str("null"),
            JsonValue::Str(s) => write!(f, "\"{}\"", json_escape(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_JSON_DEPTH {
            return Err(format!("nesting deeper than {MAX_JSON_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected character '{}' at byte {}", c as char, self.pos)),
            None => Err(String::from("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number bytes");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("malformed number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Copy unescaped UTF-8 runs wholesale.
            let run = self.pos;
            while self.peek().is_some_and(|c| c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[run..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {run}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            if (0xd800..0xdc00).contains(&code) {
                                // A high surrogate combines with a
                                // following low surrogate; anything else
                                // degrades to U+FFFD for the unpaired
                                // half without swallowing what follows.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if (0xdc00..0xe000).contains(&low) {
                                        let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                        out.push(char::from_u32(combined).unwrap_or('\u{fffd}'));
                                    } else {
                                        out.push('\u{fffd}');
                                        out.push(char::from_u32(low).unwrap_or('\u{fffd}'));
                                    }
                                } else {
                                    out.push('\u{fffd}');
                                }
                            } else {
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {}",
                                other as char,
                                self.pos - 1
                            ))
                        }
                    }
                }
                None => return Err(String::from("unterminated string")),
                Some(_) => unreachable!("run loop stops only at quote or backslash"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or("truncated \\u escape")?;
            let digit = (c as char).to_digit(16).ok_or(format!("bad hex digit at byte {}", self.pos))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_field_quotes_all_breaking_characters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_field("carriage\rreturn"), "\"carriage\rreturn\"", "\\r must be quoted too");
    }

    #[test]
    fn float_helpers_guard_non_finite_values() {
        assert_eq!(json_f64(1.5, 2), "1.50");
        assert_eq!(json_f64(f64::NAN, 2), "null");
        assert_eq!(csv_f64(f64::INFINITY, 2), "");
        assert_eq!(csv_opt(Some(f64::NAN)), "");
        assert_eq!(json_num_or_null("x: ", None), "x: null");
    }

    #[test]
    fn json_value_parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"name": "sérve", "n": -2.5e1, "ok": true, "none": null,
                "axes": [{"axis": "cores", "values": [1, 2]}, []]}"#,
        )
        .unwrap();
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("sérve"));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-25.0));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let axes = v.get("axes").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(axes.len(), 2);
        let values = axes[0].get("values").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(values[1].as_u64(), Some(2));
        assert_eq!(values[1].as_usize(), Some(2));
    }

    #[test]
    fn json_value_round_trips_through_display() {
        let text = r#"{"a": [1, "two", {"b": false}], "c": null}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v, "render → reparse is stable");
    }

    #[test]
    fn json_value_handles_escapes_and_surrogates() {
        let v = JsonValue::parse(r#""a\"b\\c\n\t😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\t😀"));
        // A valid surrogate pair combines.
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        // Unpaired halves degrade to U+FFFD without swallowing what
        // follows.
        assert_eq!(JsonValue::parse(r#""\ud800A""#).unwrap().as_str(), Some("\u{fffd}A"));
        assert_eq!(JsonValue::parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
        assert_eq!(JsonValue::parse(r#""\udc00x""#).unwrap().as_str(), Some("\u{fffd}x"));
    }

    #[test]
    fn json_value_rejects_malformed_input() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("{\"a\": }").is_err());
        assert!(JsonValue::parse("[1, 2] trailing").is_err());
        assert!(JsonValue::parse("{\"a\": 1,, \"b\": 2}").is_err());
        assert!(JsonValue::parse("nul").is_err());
        assert!(JsonValue::parse("1.2.3").is_err());
        // Nesting past the cap is an error, not a stack overflow.
        let deep = format!("{}1{}", "[".repeat(500), "]".repeat(500));
        assert!(JsonValue::parse(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn json_value_integer_accessors_reject_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(3.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(3.0).as_u64(), Some(3));
        assert_eq!(JsonValue::Str(String::from("3")).as_u64(), None);
        // 2^64 would saturate the cast; the largest representable f64
        // below it converts exactly.
        assert_eq!(JsonValue::Num(18446744073709551616.0).as_u64(), None);
        assert_eq!(JsonValue::Num(18446744073709549568.0).as_u64(), Some(18_446_744_073_709_549_568));
        assert_eq!(JsonValue::Num(-3.0).as_i64(), Some(-3));
        assert_eq!(JsonValue::Num(3.0).as_i64(), Some(3));
        assert_eq!(JsonValue::Num(3.5).as_i64(), None);
        assert_eq!(JsonValue::Num(9223372036854775808.0).as_i64(), None);
        assert_eq!(JsonValue::Num(-9223372036854775808.0).as_i64(), Some(i64::MIN));
    }
}
