//! The job server: a bounded queue of sweep jobs drained by worker
//! threads into one process-wide [`ResultCache`].
//!
//! Architecture (all `std`, no external dependencies):
//!
//! * one **accept loop** ([`Server::run`]) spawning a thread per
//!   connection;
//! * a **bounded job queue** (`VecDeque` under the jobs mutex, refused at
//!   [`ServeConfig::queue_limit`]) drained by [`ServeConfig::workers`]
//!   worker threads;
//! * each job re-lowers its [`SweepSpec`] and executes through the
//!   ordinary [`Sweep`](temu_framework::Sweep) →
//!   [`Campaign`](temu_framework::Campaign) engine — the server is a
//!   transport in front of the experiment API, never a second execution
//!   path;
//! * every job runs against the **shared cache** (optionally persisted via
//!   [`ResultCache::with_store`]), so resubmitted or overlapping sweeps
//!   are served without executing scenarios, across jobs, connections and
//!   server restarts;
//! * progress streams to subscribed connections as the protocol's `point`
//!   events, straight from the sweep's
//!   [`on_progress`](temu_framework::Sweep::on_progress) sink.
//!
//! # Crash safety
//!
//! * every job transition is journaled ([`crate::journal::Journal`],
//!   `jobs.jsonl` next to the store by default): on startup the server
//!   replays the journal and re-enqueues jobs that were queued or running
//!   when the previous process died, preserving their ids;
//! * every job runs with a sweep checkpoint between grid points that
//!   flushes the store ([`ResultCache::sync`]) and observes cancellation,
//!   so a job killed at point *k* restarts as *k* cache hits, and `cancel`
//!   stops a *running* job between points (ROADMAP 1c);
//! * a worker that panics (a scenario bug, or the `worker_panic` fault
//!   from [`crate::fault`]) fails only its own job with a typed error —
//!   the worker thread survives and keeps draining the queue;
//! * accepted connections carry read/write deadlines and a bounded frame
//!   reader ([`crate::protocol::read_frame`]), so a slowloris or garbage
//!   peer cannot pin a handler thread or buffer unbounded bytes.

use crate::checkpoints::CheckpointStore;
use crate::journal::Journal;
use crate::protocol::{coded_error_line, error_line, read_frame, ProtocolError, Request, MAX_FRAME_LEN};
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use temu_framework::{
    json_escape, ArtifactCache, CheckpointDecision, EmulationState, ResultCache, SweepProgress,
    SweepSpec,
};

/// Server configuration (see the module docs).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address; use port 0 for an ephemeral port (the bound
    /// address is reported by [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads draining the job queue (each job additionally
    /// parallelizes its points through the campaign pool).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; further submissions are
    /// refused with a typed error response.
    pub queue_limit: usize,
    /// Optional JSON-lines path for the shared result cache
    /// ([`ResultCache::with_store`]); `None` keeps results in memory only.
    pub store: Option<PathBuf>,
    /// How many finished (done/failed/cancelled) jobs to keep queryable
    /// via `status`/`result`. Older terminal jobs are evicted so a
    /// long-running server's job registry stays bounded — their cached
    /// *results* live on in the shared [`ResultCache`].
    pub history_limit: usize,
    /// Job journal path. `None` derives `jobs.jsonl` next to the store
    /// (no journal at all when the cache is purely in-memory); an explicit
    /// path journals regardless of the store.
    pub journal: Option<PathBuf>,
    /// Read/write deadline on every accepted connection (`None` disables
    /// deadlines). A peer that stops sending mid-request or stops draining
    /// its event stream is disconnected instead of pinning a handler
    /// thread forever.
    pub io_timeout: Option<Duration>,
    /// Fleet member identity advertised in `stats` (the router labels its
    /// per-member breakdown with it); `None` omits the field.
    pub member: Option<String>,
    /// Persist each running point's serialized run state every N sampling
    /// windows (`<journal>.checkpoints.jsonl`, e.g. `jobs.checkpoints.jsonl`
    /// for the default journal), so a killed
    /// server resumes an in-flight point from its last window boundary
    /// instead of re-running it. 0 (the default) disables capture; resume
    /// *seeding* from an existing checkpoint file happens regardless, so
    /// turning the flag off never strands recoverable state. Requires a
    /// journal (in-memory servers have nothing durable to resume into).
    pub window_checkpoint: u64,
    /// Optional NDJSON metrics log: a background thread appends one
    /// metrics snapshot line (the same JSON the `metrics` command
    /// returns, plus `seq` and `unix_ms`) every
    /// [`metrics_interval`](ServeConfig::metrics_interval), `O_APPEND`
    /// single-write per line so a torn tail never corrupts earlier
    /// snapshots. A final snapshot is appended at shutdown.
    pub metrics_log: Option<PathBuf>,
    /// Cadence of the metrics log (ignored without
    /// [`metrics_log`](ServeConfig::metrics_log)).
    pub metrics_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: String::from(crate::protocol::DEFAULT_ADDR),
            workers: 1,
            queue_limit: 64,
            store: None,
            history_limit: 256,
            journal: None,
            io_timeout: Some(Duration::from_secs(30)),
            member: None,
            window_checkpoint: 0,
            metrics_log: None,
            metrics_interval: Duration::from_secs(1),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn tag(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed | JobState::Cancelled)
    }
}

struct Job {
    name: String,
    spec: SweepSpec,
    state: JobState,
    /// Scheduling priority: higher first, FIFO within a level (0 default).
    priority: i64,
    total: usize,
    completed: usize,
    executed: usize,
    cache_hits: usize,
    failed: usize,
    wall_s: f64,
    error: Option<String>,
    report_json: Option<String>,
    subscribers: Vec<Sender<String>>,
    /// Set by `cancel` on a running job; the sweep's checkpoint hook
    /// observes it between grid points.
    cancel: Arc<AtomicBool>,
    /// When the job entered the queue — the base of the queue-wait
    /// histogram sample taken when a worker claims it.
    submitted: Instant,
}

fn new_job(name: String, spec: SweepSpec, total: usize, priority: i64) -> Job {
    Job {
        name,
        spec,
        state: JobState::Queued,
        priority,
        total,
        completed: 0,
        executed: 0,
        cache_hits: 0,
        failed: 0,
        wall_s: 0.0,
        error: None,
        report_json: None,
        subscribers: Vec::new(),
        cancel: Arc::new(AtomicBool::new(false)),
        submitted: Instant::now(),
    }
}

struct Jobs {
    map: HashMap<u64, Job>,
    queue: VecDeque<u64>,
    /// Terminal job ids, oldest first — the eviction order that keeps the
    /// registry bounded at [`ServeConfig::history_limit`].
    terminal: VecDeque<u64>,
    next_id: u64,
}

impl Jobs {
    /// Claims the next runnable job id: highest priority first, FIFO
    /// within a priority level (the queue itself is submission-ordered,
    /// so the first entry at the max level is the oldest). Entries whose
    /// job is no longer `Queued` (cancelled while waiting, or evicted)
    /// are dropped along the way.
    fn claim_next(&mut self) -> Option<u64> {
        self.queue
            .retain(|id| self.map.get(id).is_some_and(|j| j.state == JobState::Queued));
        let pos = self
            .queue
            .iter()
            .enumerate()
            .max_by(|(ai, a), (bi, b)| {
                let ap = self.map.get(a).map_or(i64::MIN, |j| j.priority);
                let bp = self.map.get(b).map_or(i64::MIN, |j| j.priority);
                // Strict priority order; on a tie the *earlier* index wins,
                // so compare indices reversed.
                ap.cmp(&bp).then(bi.cmp(ai))
            })
            .map(|(i, _)| i)?;
        self.queue.remove(pos)
    }

    /// Records a job's terminal transition and evicts the oldest finished
    /// jobs beyond the history limit.
    fn note_terminal(&mut self, id: u64, limit: usize) {
        self.terminal.push_back(id);
        while self.terminal.len() > limit {
            if let Some(evicted) = self.terminal.pop_front() {
                self.map.remove(&evicted);
            }
        }
    }
}

/// The server's metrics handles, all interned in a **per-server**
/// registry (not the process-wide one): tests spawn several servers in
/// one process, and their job counters must not cross-pollute. The
/// `metrics` command merges the process-wide registry (solver, core and
/// store instrumentation) with this one, server values winning on a
/// name collision.
struct ServeObs {
    registry: temu_obs::Registry,
    jobs_recovered: Arc<temu_obs::Counter>,
    jobs_submitted: Arc<temu_obs::Counter>,
    jobs_completed: Arc<temu_obs::Counter>,
    jobs_failed: Arc<temu_obs::Counter>,
    jobs_cancelled: Arc<temu_obs::Counter>,
    points_executed: Arc<temu_obs::Counter>,
    point_cache_hits: Arc<temu_obs::Counter>,
    points_failed: Arc<temu_obs::Counter>,
    queue_wait_ns: Arc<temu_obs::Histogram>,
    run_ns: Arc<temu_obs::Histogram>,
    queue_depth: Arc<temu_obs::Gauge>,
    running: Arc<temu_obs::Gauge>,
    cache_entries: Arc<temu_obs::Gauge>,
    results_retained: Arc<temu_obs::Gauge>,
}

impl ServeObs {
    fn new() -> ServeObs {
        let registry = temu_obs::Registry::new();
        let (
            jobs_recovered,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_cancelled,
            points_executed,
            point_cache_hits,
            points_failed,
            queue_wait_ns,
            run_ns,
            queue_depth,
            running,
            cache_entries,
            results_retained,
        ) = {
            let serve = registry.scope("serve");
            (
                serve.counter("jobs_recovered"),
                serve.counter("jobs_submitted"),
                serve.counter("jobs_completed"),
                serve.counter("jobs_failed"),
                serve.counter("jobs_cancelled"),
                serve.counter("points_executed"),
                serve.counter("point_cache_hits"),
                serve.counter("points_failed"),
                serve.histogram("queue_wait_ns"),
                serve.histogram("run_ns"),
                serve.gauge("queue_depth"),
                serve.gauge("running"),
                serve.gauge("cache_entries"),
                serve.gauge("results_retained"),
            )
        };
        ServeObs {
            registry,
            jobs_recovered,
            jobs_submitted,
            jobs_completed,
            jobs_failed,
            jobs_cancelled,
            points_executed,
            point_cache_hits,
            points_failed,
            queue_wait_ns,
            run_ns,
            queue_depth,
            running,
            cache_entries,
            results_retained,
        }
    }
}

/// How many completed-point / terminal-job events the results feed
/// retains for replay. A `results` client whose cursor has fallen off
/// the window sees `earliest_retained` jump past its cursor and knows
/// it missed events (it can re-fetch reports via `result`).
const FEED_RETAIN: usize = 4096;

struct FeedState {
    /// Retained events, oldest first: `(seq, job, terminal, line)`.
    /// `line` is the full event JSON *with* its `"seq"` field.
    buf: VecDeque<(u64, u64, bool, String)>,
    /// The next sequence number to assign (first event gets 1).
    next_seq: u64,
}

/// The completed-point event feed behind the `results` command: every
/// point completion and every terminal job transition is appended here
/// with a monotone sequence number, so a client can replay from a
/// cursor, follow live, and resume after a reconnect without duplicates
/// (ROADMAP 1b).
struct ResultsFeed {
    state: Mutex<FeedState>,
    cv: Condvar,
}

impl ResultsFeed {
    fn new() -> ResultsFeed {
        ResultsFeed {
            state: Mutex::new(FeedState { buf: VecDeque::new(), next_seq: 1 }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FeedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Appends `line` (an event object, `{`-prefixed) to the feed,
    /// stamping it with the next sequence number.
    fn push(&self, job: u64, terminal: bool, line: &str) {
        let mut state = self.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        let stamped = format!("{{\"seq\": {seq}, {}", &line[1..]);
        state.buf.push_back((seq, job, terminal, stamped));
        while state.buf.len() > FEED_RETAIN {
            state.buf.pop_front();
        }
        drop(state);
        self.cv.notify_all();
    }

    /// The latest assigned sequence number (0 before the first event).
    fn cursor(&self) -> u64 {
        self.lock().next_seq - 1
    }

    /// The oldest retained sequence number (0 when nothing is retained).
    fn earliest_retained(&self) -> u64 {
        self.lock().buf.front().map_or(0, |(seq, ..)| *seq)
    }

    /// Events after `cursor` (optionally restricted to one job),
    /// oldest first. The second return is true when a terminal event of
    /// the filtered job is *retained* — checked against the whole buffer,
    /// not just the slice past the cursor, so a follow stream resuming at
    /// or beyond a finished job's terminal event ends immediately instead
    /// of blocking for events that will never come.
    fn collect_after(&self, cursor: u64, job: Option<u64>) -> (Vec<(u64, String)>, bool) {
        let state = self.lock();
        let mut out = Vec::new();
        let mut job_done = false;
        for (seq, event_job, terminal, line) in &state.buf {
            if let Some(want) = job {
                if *event_job != want {
                    continue;
                }
                job_done |= *terminal;
            }
            if *seq <= cursor {
                continue;
            }
            out.push((*seq, line.clone()));
        }
        (out, job_done)
    }

    fn retained(&self) -> usize {
        self.lock().buf.len()
    }
}

struct Shared {
    cache: ResultCache,
    /// Process-wide build-artifact cache: every job's sweep threads its
    /// scenario builds through this, so floorplans, meshes and multigrid
    /// hierarchies survive across jobs the way point *results* survive in
    /// `cache`. Unbounded by design — a server's working set of distinct
    /// geometries is small (the artifacts are keyed by configuration, not
    /// by job).
    artifacts: Arc<ArtifactCache>,
    journal: Option<Journal>,
    /// The window-checkpoint store (present whenever the journal is) and
    /// the capture cadence (0 = record nothing; seeded resume still
    /// happens).
    checkpoints: Option<CheckpointStore>,
    window_every: u64,
    /// Mid-point run states recovered at bind time, waiting for their
    /// re-enqueued job to be claimed (the worker takes them out).
    resume_states: Mutex<HashMap<u64, Vec<EmulationState>>>,
    member: Option<String>,
    io_timeout: Option<Duration>,
    queue_limit: usize,
    history_limit: usize,
    workers: usize,
    jobs: Mutex<Jobs>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Per-server metrics registry and pre-interned handles; the job and
    /// point counters the `stats` command reports live here (`stats` is a
    /// thin view over the registry).
    obs: ServeObs,
    /// The completed-point event feed behind `results`.
    feed: ResultsFeed,
    metrics_log: Option<PathBuf>,
    metrics_interval: Duration,
}

impl Shared {
    fn lock_jobs(&self) -> MutexGuard<'_, Jobs> {
        self.jobs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Sends `line` to the job's subscribers, dropping the ones that went
    /// away; a terminal line also detaches everyone (their receivers then
    /// disconnect, ending the client-side stream loop).
    fn broadcast(&self, job_id: u64, line: &str, terminal: bool) {
        let mut jobs = self.lock_jobs();
        if let Some(job) = jobs.map.get_mut(&job_id) {
            job.subscribers.retain(|tx| tx.send(line.to_string()).is_ok());
            if terminal {
                job.subscribers.clear();
            }
        }
    }
}

/// The terminal `done` event / non-terminal progress snapshot for a job.
fn done_line(job_id: u64, job: &Job) -> String {
    let mut line = format!(
        "{{\"event\": \"done\", \"job\": {job_id}, \"ok\": {}, \"points\": {}, \"executed\": {}, \"cache_hits\": {}, \"failed\": {}, \"wall_s\": {:.6}",
        job.state == JobState::Done && job.failed == 0,
        job.total,
        job.executed,
        job.cache_hits,
        job.failed,
        job.wall_s,
    );
    if let Some(e) = &job.error {
        line.push_str(&format!(", \"error\": \"{}\"", json_escape(e)));
    }
    if job.state == JobState::Cancelled {
        line.push_str(", \"cancelled\": true");
    }
    line.push('}');
    line
}

fn point_line(job_id: u64, p: &SweepProgress<'_>) -> String {
    let mut line = format!(
        "{{\"event\": \"point\", \"job\": {job_id}, \"index\": {}, \"completed\": {}, \"total\": {}, \"label\": \"{}\", \"cache_hit\": {}, \"ok\": {}",
        p.index,
        p.completed,
        p.total,
        json_escape(p.label),
        p.cache_hit,
        p.outcome.is_ok(),
    );
    match p.outcome {
        Ok(s) => {
            if let Some(peak) = s.peak_temp_k.filter(|t| t.is_finite()) {
                line.push_str(&format!(", \"peak_temp_k\": {peak:.3}"));
            }
            line.push_str(&format!(
                ", \"windows\": {}, \"unconverged_substeps\": {}",
                s.windows, s.unconverged_substeps
            ));
        }
        Err(e) => line.push_str(&format!(", \"error\": \"{}\"", json_escape(&e.to_string()))),
    }
    line.push('}');
    line
}

/// A bound, not-yet-running job server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a server running on a background thread (see
/// [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server (idempotent): closes the queue, wakes the accept
    /// loop, and joins the server thread.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared, self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Flags the server down and unblocks its accept loop with a dummy
/// connection.
fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    shared.cv.notify_all();
    // Followers of the results feed block on its condvar; wake them so
    // they observe the flag and end their streams.
    shared.feed.cv.notify_all();
    let _ = TcpStream::connect(addr);
}

impl Server {
    /// Binds the listen socket and opens the shared cache (loading any
    /// existing store entries).
    ///
    /// # Errors
    ///
    /// Any I/O error binding the address or opening the store.
    pub fn bind(config: ServeConfig) -> std::io::Result<Server> {
        let cache = match &config.store {
            Some(path) => ResultCache::with_store(path)?,
            None => ResultCache::in_memory(),
        };
        // The journal lives next to the store unless placed explicitly; a
        // fully in-memory server has nothing durable to recover into, so
        // it runs unjournaled.
        let journal_path = config
            .journal
            .clone()
            .or_else(|| config.store.as_ref().map(|s| s.with_file_name("jobs.jsonl")));
        let (journal, replayed) = match journal_path {
            Some(path) => {
                let (journal, replayed) = Journal::open(path)?;
                (Some(journal), replayed)
            }
            None => (None, crate::journal::JournalReplay { next_id: 1, ..Default::default() }),
        };
        // The window-checkpoint store rides with the journal: replay it,
        // seed the recovered jobs' mid-point states, and compact away the
        // checkpoints of jobs that reached a terminal record. A state that
        // fails to decode (version skew, torn bytes) is dropped — its
        // point re-runs from scratch, which is correct, just slower. The
        // path derives from the *journal* (`jobs.jsonl` →
        // `jobs.checkpoints.jsonl`), not a fixed sibling name: records
        // are keyed by journal-local job ids, and fleet members sharing
        // one store directory run distinct journals — a shared
        // checkpoints file would mix their id spaces and race the
        // startup compaction's tmp+rename.
        let mut resume_states: HashMap<u64, Vec<EmulationState>> = HashMap::new();
        let checkpoints = match &journal {
            Some(journal) => {
                let path = journal.path().with_extension("checkpoints.jsonl");
                let (store, ck_replay) = CheckpointStore::open(&path)?;
                let pending: std::collections::HashSet<u64> =
                    replayed.pending.iter().map(|job| job.id).collect();
                for (&job, points) in &ck_replay.states {
                    if !pending.contains(&job) {
                        continue;
                    }
                    let states: Vec<EmulationState> = points
                        .values()
                        .filter_map(|(_, bytes)| EmulationState::from_bytes(bytes).ok())
                        .collect();
                    if !states.is_empty() {
                        resume_states.insert(job, states);
                    }
                }
                store.compact(&ck_replay, |job| pending.contains(&job))?;
                Some(store)
            }
            None => None,
        };
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            cache,
            artifacts: Arc::new(ArtifactCache::new()),
            journal,
            checkpoints,
            window_every: config.window_checkpoint,
            resume_states: Mutex::new(resume_states),
            member: config.member.clone(),
            io_timeout: config.io_timeout,
            queue_limit: config.queue_limit.max(1),
            history_limit: config.history_limit.max(1),
            workers: config.workers.max(1),
            jobs: Mutex::new(Jobs {
                map: HashMap::new(),
                queue: VecDeque::new(),
                terminal: VecDeque::new(),
                next_id: replayed.next_id.max(1),
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            obs: ServeObs::new(),
            feed: ResultsFeed::new(),
            metrics_log: config.metrics_log.clone(),
            metrics_interval: config.metrics_interval.max(Duration::from_millis(10)),
        });
        // Re-enqueue what the previous incarnation never finished — their
        // executed points are already cache entries, so a recovered job
        // resumes as cache hits plus the remaining grid.
        for recovered in replayed.pending {
            let total = match recovered.spec.lower() {
                Ok(sweep) => sweep.n_points(),
                Err(e) => {
                    // The spec journaled fine but no longer lowers (e.g. a
                    // preset removed across versions): close it out rather
                    // than re-journal it forever.
                    if let Some(journal) = &shared.journal {
                        journal.record_terminal(recovered.id, "failed");
                    }
                    let _ = e;
                    continue;
                }
            };
            let mut jobs = shared.lock_jobs();
            jobs.map.insert(
                recovered.id,
                new_job(recovered.name, recovered.spec, total, recovered.priority),
            );
            jobs.queue.push_back(recovered.id);
            drop(jobs);
            shared.obs.jobs_recovered.inc();
        }
        Ok(Server { listener, shared })
    }

    /// Jobs the journal recovered at bind time (queued again, not yet
    /// counted as submitted).
    #[must_use]
    pub fn recovered_jobs(&self) -> u64 {
        self.shared.obs.jobs_recovered.get()
    }

    /// Mid-point run states recovered from the window-checkpoint store at
    /// bind time — points that will resume from a window boundary instead
    /// of re-running.
    #[must_use]
    pub fn recovered_checkpoints(&self) -> usize {
        self.shared
            .resume_states
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// The window-checkpoint store path, when active.
    #[must_use]
    pub fn checkpoints_path(&self) -> Option<&std::path::Path> {
        self.shared.checkpoints.as_ref().map(CheckpointStore::path)
    }

    /// The journal path, when journaling is active.
    #[must_use]
    pub fn journal_path(&self) -> Option<&std::path::Path> {
        self.shared.journal.as_ref().map(Journal::path)
    }

    /// The bound address (resolves an ephemeral port request).
    ///
    /// # Errors
    ///
    /// The socket's address lookup failure (effectively never after a
    /// successful bind).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Number of cached points currently shared across jobs.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Runs the server on the current thread until a `shutdown` request
    /// arrives: spawns the worker pool, then accepts and serves
    /// connections.
    pub fn run(self) {
        let addr = self.listener.local_addr().ok();
        let workers: Vec<JoinHandle<()>> = (0..self.shared.workers)
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let metrics_thread = self.shared.metrics_log.clone().map(|path| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || metrics_log_loop(&shared, &path))
        });
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = serve_connection(&shared, stream, addr);
            });
        }
        self.shared.cv.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        // No watcher is left hanging by shutdown: any job the workers
        // never claimed is cancelled with a terminal event (workers stop
        // claiming once the flag is set, so the drain below races with
        // nothing).
        let abandoned: Vec<(u64, String)> = {
            let mut jobs = self.shared.lock_jobs();
            let ids: Vec<u64> = jobs.queue.drain(..).collect();
            ids.into_iter()
                .filter_map(|id| {
                    let job = jobs.map.get_mut(&id)?;
                    job.state = JobState::Cancelled;
                    job.error = Some(String::from("server shut down before the job ran"));
                    Some((id, done_line(id, job)))
                })
                .collect()
        };
        for (id, line) in abandoned {
            self.shared.obs.jobs_cancelled.inc();
            if let Some(journal) = &self.shared.journal {
                journal.record_terminal(id, JobState::Cancelled.tag());
            }
            self.shared.feed.push(id, true, &line);
            self.shared.broadcast(id, &line, true);
            self.shared.lock_jobs().note_terminal(id, self.shared.history_limit);
        }
        if let Some(metrics) = metrics_thread {
            let _ = metrics.join();
        }
    }

    /// Runs the server on a background thread, returning a handle with
    /// the bound address — the in-process form the tests and examples
    /// drive.
    ///
    /// # Errors
    ///
    /// Any [`Server::bind`] error.
    pub fn spawn(config: ServeConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let addr = server.local_addr()?;
        let shared = Arc::clone(&server.shared);
        let thread = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, shared, thread: Some(thread) })
    }
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let claimed = {
            let mut jobs = shared.lock_jobs();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(id) = jobs.claim_next() {
                    if let Some(job) = jobs.map.get_mut(&id) {
                        if job.state == JobState::Queued {
                            job.state = JobState::Running;
                            if temu_obs::enabled() {
                                shared.obs.queue_wait_ns.record_duration(job.submitted.elapsed());
                            }
                            break Some((id, job.spec.clone(), Arc::clone(&job.cancel)));
                        }
                    }
                    continue;
                }
                jobs = shared.cv.wait(jobs).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some((id, spec, cancel)) = claimed else { return };
        if let Some(journal) = &shared.journal {
            journal.record_start(id);
        }
        // A panicking job — a scenario bug past the campaign's own
        // isolation, or the `worker_panic` fault — fails that job with a
        // typed error; this worker thread survives to drain the queue.
        let run_started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job(shared, id, &spec, &cancel);
        }));
        if temu_obs::enabled() {
            shared.obs.run_ns.record_duration(run_started.elapsed());
        }
        if let Err(payload) = outcome {
            let message = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| String::from("opaque panic payload"));
            finish_job(shared, id, JobState::Failed, Some(format!("worker panicked: {message}")), None);
        }
    }
}

fn run_job(shared: &Arc<Shared>, id: u64, spec: &SweepSpec, cancel: &Arc<AtomicBool>) {
    let sweep = match spec.lower() {
        Ok(sweep) => sweep,
        Err(e) => {
            // Lowering is validated at submit time, but the running server
            // must survive any spec that slips through regardless.
            finish_job(shared, id, JobState::Failed, Some(e.to_string()), None);
            return;
        }
    };
    let total = sweep.n_points();
    shared.broadcast(id, &format!("{{\"event\": \"start\", \"job\": {id}, \"total\": {total}}}"), false);
    let progress_shared = Arc::clone(shared);
    let checkpoint_shared = Arc::clone(shared);
    let checkpoint_cancel = Arc::clone(cancel);
    let mut sweep = sweep.artifacts(Arc::clone(&shared.artifacts));
    // Seed recovered mid-point states: a point whose content key matches
    // resumes from its last window boundary; everything else (including a
    // state whose grid point changed across versions) builds fresh.
    let seeds = shared
        .resume_states
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&id)
        .unwrap_or_default();
    for state in seeds {
        sweep = sweep.resume_point(state);
    }
    if shared.window_every > 0 {
        // Within each running point, every N windows: persist the
        // boundary's run state, stream a `progress` point event to
        // watchers, and observe cancellation — a client `cancel` (or
        // server shutdown) now stops mid-point at a resumable boundary
        // instead of waiting the point out.
        let wc_shared = Arc::clone(shared);
        let wc_cancel = Arc::clone(cancel);
        sweep = sweep.on_window_checkpoint(shared.window_every, move |cp| {
            if let Some(store) = &wc_shared.checkpoints {
                store.record(id, cp.key, cp.windows, &cp.state.to_bytes());
            }
            let line = format!(
                "{{\"event\": \"point\", \"job\": {id}, \"index\": {}, \"label\": \"{}\", \"progress\": {{\"windows\": {}, \"total_windows\": {}}}}}",
                cp.index,
                json_escape(cp.label),
                cp.windows,
                cp.total_windows,
            );
            wc_shared.broadcast(id, &line, false);
            if wc_cancel.load(Ordering::Acquire) || wc_shared.shutdown.load(Ordering::SeqCst) {
                CheckpointDecision::Cancel
            } else {
                CheckpointDecision::Continue
            }
        });
    }
    let report = sweep
        .on_progress(move |p| {
            {
                let mut jobs = progress_shared.lock_jobs();
                if let Some(job) = jobs.map.get_mut(&id) {
                    job.completed = p.completed;
                    if p.cache_hit {
                        job.cache_hits += 1;
                    } else {
                        job.executed += 1;
                    }
                    if p.outcome.is_err() {
                        job.failed += 1;
                    }
                }
            }
            let line = point_line(id, p);
            progress_shared.feed.push(id, false, &line);
            progress_shared.broadcast(id, &line, false);
        })
        // Between grid points: inject chaos (under this worker's
        // catch_unwind), flush the incremental store so a crash here
        // resumes as cache hits, then observe cancellation — from the
        // client's `cancel` or from server shutdown.
        .on_checkpoint(move |_cp| {
            crate::fault::worker_panic_point();
            checkpoint_shared.cache.sync();
            let stop = checkpoint_cancel.load(Ordering::Acquire)
                || checkpoint_shared.shutdown.load(Ordering::SeqCst);
            if stop {
                CheckpointDecision::Cancel
            } else {
                CheckpointDecision::Continue
            }
        })
        .run_cached(&shared.cache);
    shared.obs.points_executed.add(report.executed as u64);
    shared.obs.point_cache_hits.add(report.cache_hits as u64);
    shared.obs.points_failed.add(report.n_failed() as u64);
    let state = if report.cancelled { JobState::Cancelled } else { JobState::Done };
    finish_job(shared, id, state, None, Some(report));
}

fn finish_job(
    shared: &Arc<Shared>,
    id: u64,
    state: JobState,
    error: Option<String>,
    report: Option<temu_framework::SweepReport>,
) {
    let line = {
        let mut jobs = shared.lock_jobs();
        let Some(job) = jobs.map.get_mut(&id) else { return };
        job.state = state;
        job.error = error;
        if let Some(report) = &report {
            job.total = report.points.len();
            // Cancelled-before-start points never completed; they are
            // placeholders in the report, not progress.
            job.completed = report.points.len() - report.n_cancelled();
            job.executed = report.executed;
            job.cache_hits = report.cache_hits;
            job.failed = report.n_failed();
            job.wall_s = report.wall.as_secs_f64();
            // Stored single-line: every newline in the pretty export is
            // structural (strings escape theirs), so this stays valid JSON.
            job.report_json = Some(report.to_json().replace('\n', " "));
        }
        done_line(id, job)
    };
    match state {
        JobState::Done => shared.obs.jobs_completed.inc(),
        JobState::Cancelled => shared.obs.jobs_cancelled.inc(),
        _ => shared.obs.jobs_failed.inc(),
    };
    if let Some(journal) = &shared.journal {
        journal.record_terminal(id, state.tag());
    }
    shared.feed.push(id, true, &line);
    shared.broadcast(id, &line, true);
    shared.lock_jobs().note_terminal(id, shared.history_limit);
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

fn serve_connection(
    shared: &Arc<Shared>,
    stream: TcpStream,
    addr: Option<SocketAddr>,
) -> std::io::Result<()> {
    // The `drop_conn` fault: hang up before serving, as a crashing or
    // partitioned server would, leaving the client to retry.
    if crate::fault::drop_connection() {
        return Ok(());
    }
    stream.set_read_timeout(shared.io_timeout)?;
    stream.set_write_timeout(shared.io_timeout)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, MAX_FRAME_LEN) {
            Ok(Some(line)) => line,
            // Clean EOF: the client is done with the connection.
            Ok(None) => return Ok(()),
            Err(e @ ProtocolError::FrameTooLong { .. }) => {
                // Typed refusal, then hang up: the rest of the oversized
                // line is still in flight and nothing after it can be
                // framed reliably.
                let refusal = format!(
                    "{{\"ok\": false, \"code\": \"frame_too_long\", \"limit\": {MAX_FRAME_LEN}, \"error\": \"{}\"}}",
                    json_escape(&e.to_string())
                );
                writeln!(writer, "{refusal}")?;
                return Ok(());
            }
            // Deadline elapsed or the socket failed: the peer is gone or
            // unresponsive — stop serving it (a live client reconnects).
            Err(_) => return Ok(()),
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                writeln!(writer, "{}", error_line(&e))?;
                continue;
            }
        };
        let cmd = match &request {
            Request::Submit { .. } => "submit",
            Request::Status { .. } => "status",
            Request::Result { .. } => "result",
            Request::Cancel { .. } => "cancel",
            Request::Watch { .. } => "watch",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Results { .. } => "results",
            Request::Shutdown => "shutdown",
        };
        shared.obs.registry.counter(&format!("serve.req.{cmd}")).inc();
        match request {
            Request::Submit { spec, watch, priority } => {
                handle_submit(shared, &mut writer, *spec, watch, priority)?;
            }
            Request::Status { job } => writeln!(writer, "{}", status_response(shared, job))?,
            Request::Result { job } => writeln!(writer, "{}", result_response(shared, job))?,
            Request::Cancel { job } => writeln!(writer, "{}", cancel_response(shared, job))?,
            Request::Watch { job } => handle_watch(shared, &mut writer, job)?,
            Request::Stats => writeln!(writer, "{}", stats_response(shared))?,
            Request::Metrics => writeln!(writer, "{}", metrics_response(shared))?,
            Request::Results { after, follow, job } => {
                handle_results(shared, &mut writer, after, follow, job)?;
            }
            Request::Shutdown => {
                writeln!(writer, "{{\"ok\": true, \"shutdown\": true}}")?;
                if let Some(addr) = addr {
                    request_shutdown(shared, addr);
                }
                return Ok(());
            }
        }
        writer.flush()?;
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    spec: SweepSpec,
    watch: bool,
    priority: i64,
) -> std::io::Result<()> {
    // Validate by lowering once up front, so a bad spec is the
    // submitter's typed error, not a later queue failure.
    let total = match spec.lower() {
        Ok(sweep) => sweep.n_points(),
        Err(e) => {
            writeln!(writer, "{}", error_line(&e.to_string()))?;
            return Ok(());
        }
    };
    let subscription = {
        let mut jobs = shared.lock_jobs();
        if jobs.queue.len() >= shared.queue_limit {
            drop(jobs);
            // Coded refusal: the fleet router spills `queue_full` to the
            // next member in rendezvous order instead of failing the
            // submission.
            writeln!(
                writer,
                "{}",
                coded_error_line(
                    "queue_full",
                    &format!("queue full ({} job(s) queued)", shared.queue_limit)
                )
            )?;
            return Ok(());
        }
        let id = jobs.next_id;
        jobs.next_id += 1;
        let mut job = new_job(spec.name.clone(), spec, total, priority);
        // Write-ahead: the submit record lands (under the jobs lock, so
        // journal order matches queue order) before the job is visible to
        // workers — a crash from here on recovers it.
        if let Some(journal) = &shared.journal {
            journal.record_submit(id, &job.name, job.priority, &job.spec);
        }
        // Subscribe before the job can start: no event is ever missed.
        let rx = watch.then(|| {
            let (tx, rx) = channel();
            job.subscribers.push(tx);
            rx
        });
        jobs.map.insert(id, job);
        jobs.queue.push_back(id);
        (id, rx)
    };
    let (id, rx) = subscription;
    shared.obs.jobs_submitted.inc();
    shared.cv.notify_one();
    writeln!(writer, "{{\"ok\": true, \"job\": {id}, \"total\": {total}}}")?;
    writer.flush()?;
    if let Some(rx) = rx {
        stream_events(writer, &rx)?;
    }
    Ok(())
}

/// Forwards queued event lines until the job's terminal event detaches
/// the sender side.
fn stream_events(writer: &mut TcpStream, rx: &Receiver<String>) -> std::io::Result<()> {
    while let Ok(line) = rx.recv() {
        writeln!(writer, "{line}")?;
        writer.flush()?;
    }
    Ok(())
}

enum WatchOutcome {
    Missing,
    AlreadyTerminal(String),
    Attached(Receiver<String>),
}

fn handle_watch(shared: &Arc<Shared>, writer: &mut TcpStream, job_id: u64) -> std::io::Result<()> {
    let outcome = {
        let mut jobs = shared.lock_jobs();
        match jobs.map.get_mut(&job_id) {
            None => WatchOutcome::Missing,
            Some(job) if job.state.terminal() => WatchOutcome::AlreadyTerminal(done_line(job_id, job)),
            Some(job) => {
                let (tx, rx) = channel();
                job.subscribers.push(tx);
                WatchOutcome::Attached(rx)
            }
        }
    };
    match outcome {
        WatchOutcome::Missing => writeln!(writer, "{}", error_line(&format!("no such job {job_id}"))),
        WatchOutcome::AlreadyTerminal(done) => {
            writeln!(writer, "{{\"ok\": true, \"job\": {job_id}}}")?;
            writeln!(writer, "{done}")
        }
        WatchOutcome::Attached(rx) => {
            writeln!(writer, "{{\"ok\": true, \"job\": {job_id}}}")?;
            writer.flush()?;
            stream_events(writer, &rx)
        }
    }
}

fn status_response(shared: &Arc<Shared>, job_id: u64) -> String {
    let jobs = shared.lock_jobs();
    match jobs.map.get(&job_id) {
        None => error_line(&format!("no such job {job_id}")),
        Some(job) => format!(
            "{{\"ok\": true, \"job\": {job_id}, \"name\": \"{}\", \"state\": \"{}\", \"priority\": {}, \"completed\": {}, \"total\": {}, \"executed\": {}, \"cache_hits\": {}, \"failed\": {}}}",
            json_escape(&job.name),
            job.state.tag(),
            job.priority,
            job.completed,
            job.total,
            job.executed,
            job.cache_hits,
            job.failed,
        ),
    }
}

fn result_response(shared: &Arc<Shared>, job_id: u64) -> String {
    let jobs = shared.lock_jobs();
    match jobs.map.get(&job_id) {
        None => error_line(&format!("no such job {job_id}")),
        Some(job) => match (&job.report_json, job.state) {
            (Some(report), _) => {
                format!(
                    "{{\"ok\": true, \"job\": {job_id}, \"state\": \"{}\", \"failed\": {}, \"report\": {report}}}",
                    job.state.tag(),
                    job.failed
                )
            }
            (None, state) => error_line(&format!("job {job_id} has no report (state: {})", state.tag())),
        },
    }
}

fn cancel_response(shared: &Arc<Shared>, job_id: u64) -> String {
    let line = {
        let mut jobs = shared.lock_jobs();
        match jobs.map.get_mut(&job_id) {
            None => return error_line(&format!("no such job {job_id}")),
            Some(job) if job.state == JobState::Queued => {
                job.state = JobState::Cancelled;
                let done = done_line(job_id, job);
                jobs.queue.retain(|id| *id != job_id);
                done
            }
            Some(job) if job.state == JobState::Running => {
                // Acknowledge now; the sweep observes the flag at its next
                // checkpoint, stops between grid points, and the worker
                // emits the terminal event (completed points stay cached).
                job.cancel.store(true, Ordering::Release);
                return format!("{{\"ok\": true, \"job\": {job_id}, \"cancelling\": true}}");
            }
            Some(job) => {
                return error_line(&format!(
                    "job {job_id} is {} — finished jobs cannot be cancelled",
                    job.state.tag()
                ))
            }
        }
    };
    shared.obs.jobs_cancelled.inc();
    if let Some(journal) = &shared.journal {
        journal.record_terminal(job_id, JobState::Cancelled.tag());
    }
    shared.feed.push(job_id, true, &line);
    shared.broadcast(job_id, &line, true);
    shared.lock_jobs().note_terminal(job_id, shared.history_limit);
    format!("{{\"ok\": true, \"job\": {job_id}, \"cancelled\": true}}")
}

fn stats_response(shared: &Arc<Shared>) -> String {
    let (queue_depth, running) = {
        let jobs = shared.lock_jobs();
        let running = jobs.map.values().filter(|j| j.state == JobState::Running).count();
        (jobs.queue.len(), running)
    };
    let executed = shared.obs.points_executed.get();
    let hits = shared.obs.point_cache_hits.get();
    let served = executed + hits;
    let hit_rate = if served == 0 { 0.0 } else { hits as f64 / served as f64 };
    let member = match &shared.member {
        Some(name) => format!("\"member\": \"{}\", ", json_escape(name)),
        None => String::new(),
    };
    // The build-artifact layer: how much scenario construction the
    // process-wide cache absorbed, per layer, since the server started.
    let arts = shared.artifacts.stats();
    let art_served = arts.hits() + arts.misses();
    let art_rate = if art_served == 0 { 0.0 } else { arts.hits() as f64 / art_served as f64 };
    let artifacts = format!(
        "\"artifact_hit_rate\": {art_rate:.4}, \"artifact_floorplan_hits\": {}, \"artifact_floorplan_misses\": {}, \"artifact_mesh_hits\": {}, \"artifact_mesh_misses\": {}, \"artifact_operator_hits\": {}, \"artifact_operator_misses\": {}, \"artifact_program_hits\": {}, \"artifact_program_misses\": {}",
        arts.floorplan_hits,
        arts.floorplan_misses,
        arts.mesh_hits,
        arts.mesh_misses,
        arts.operator_hits,
        arts.operator_misses,
        arts.program_hits,
        arts.program_misses,
    );
    format!(
        "{{\"ok\": true, {member}\"jobs_submitted\": {}, \"jobs_completed\": {}, \"jobs_failed\": {}, \"jobs_cancelled\": {}, \"jobs_recovered\": {}, \"queue_depth\": {queue_depth}, \"running\": {running}, \"workers\": {}, \"queue_limit\": {}, \"points_executed\": {executed}, \"point_cache_hits\": {hits}, \"points_failed\": {}, \"cache_hit_rate\": {hit_rate:.4}, {artifacts}, \"cache_entries\": {}, \"store\": {}, \"journal\": {}}}",
        shared.obs.jobs_submitted.get(),
        shared.obs.jobs_completed.get(),
        shared.obs.jobs_failed.get(),
        shared.obs.jobs_cancelled.get(),
        shared.obs.jobs_recovered.get(),
        shared.workers,
        shared.queue_limit,
        shared.obs.points_failed.get(),
        shared.cache.len(),
        match shared.cache.store_path() {
            Some(path) => format!("\"{}\"", json_escape(&path.display().to_string())),
            None => String::from("null"),
        },
        match shared.journal.as_ref().map(|j| j.path().display().to_string()) {
            Some(path) => format!("\"{}\"", json_escape(&path)),
            None => String::from("null"),
        },
    )
}

/// A point-in-time metrics snapshot: the process-wide registry (solver,
/// core, store instrumentation) merged with the server's own (job and
/// point counters, request counters, latency histograms; server values
/// win a name collision). Point-in-time gauges are refreshed first.
fn metrics_snapshot(shared: &Arc<Shared>) -> temu_obs::Snapshot {
    {
        let jobs = shared.lock_jobs();
        let running = jobs.map.values().filter(|j| j.state == JobState::Running).count();
        shared.obs.queue_depth.set(jobs.queue.len() as u64);
        shared.obs.running.set(running as u64);
    }
    shared.obs.cache_entries.set(shared.cache.len() as u64);
    shared.obs.results_retained.set(shared.feed.retained() as u64);
    let mut snapshot = temu_obs::global().snapshot();
    snapshot.merge(&shared.obs.registry.snapshot());
    snapshot
}

fn metrics_response(shared: &Arc<Shared>) -> String {
    let member = match &shared.member {
        Some(name) => format!("\"member\": \"{}\", ", json_escape(name)),
        None => String::new(),
    };
    format!("{{\"ok\": true, {member}{}}}", metrics_snapshot(shared).to_json_fields())
}

/// Serves one `results` request: ack with the current cursor and
/// retention horizon, replay retained events past `after`, then (under
/// `follow`) block for new events until the job filter's terminal event,
/// the client hangs up, or the server shuts down. Every stream ends with
/// an `end` event carrying the cursor to resume from.
fn handle_results(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    after: u64,
    follow: bool,
    job: Option<u64>,
) -> std::io::Result<()> {
    writeln!(
        writer,
        "{{\"ok\": true, \"cursor\": {}, \"earliest_retained\": {}}}",
        shared.feed.cursor(),
        shared.feed.earliest_retained(),
    )?;
    writer.flush()?;
    let mut cursor = after;
    loop {
        let (events, job_done) = shared.feed.collect_after(cursor, job);
        for (seq, line) in events {
            cursor = seq;
            writeln!(writer, "{line}")?;
        }
        writer.flush()?;
        if job_done || !follow || shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Block until the feed grows (or shutdown). The timeout bounds
        // how stale the shutdown check can get; spurious wakeups just
        // re-collect nothing.
        let state = shared.feed.lock();
        if state.next_seq - 1 <= cursor {
            let _unused = shared
                .feed
                .cv
                .wait_timeout(state, Duration::from_millis(250))
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    writeln!(writer, "{{\"event\": \"end\", \"cursor\": {cursor}}}")?;
    writer.flush()
}

/// The `--metrics-log` thread body: append one snapshot line per
/// interval (each line a single `write` to an `O_APPEND` handle, so a
/// dying server tears at most the last line), plus a final snapshot at
/// shutdown.
fn metrics_log_loop(shared: &Arc<Shared>, path: &std::path::Path) {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path);
    let Ok(mut file) = file else {
        eprintln!("temu-serve: cannot open metrics log {}", path.display());
        return;
    };
    let mut seq: u64 = 0;
    let mut append = |seq: u64| {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis());
        let line = format!(
            "{{\"seq\": {seq}, \"unix_ms\": {unix_ms}, {}}}\n",
            metrics_snapshot(shared).to_json_fields()
        );
        let _ = file.write_all(line.as_bytes());
    };
    while !shared.shutdown.load(Ordering::SeqCst) {
        seq += 1;
        append(seq);
        // Sleep in small slices so shutdown is honored promptly even
        // under a long interval.
        let mut left = shared.metrics_interval;
        while !left.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = left.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            left -= slice;
        }
    }
    append(seq + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued(priority: i64) -> Job {
        let spec = SweepSpec::named("smoke").expect("smoke preset");
        new_job(String::from("t"), spec, 1, priority)
    }

    #[test]
    fn claim_order_is_priority_then_fifo_and_skips_non_queued() {
        let mut jobs = Jobs {
            map: HashMap::new(),
            queue: VecDeque::new(),
            terminal: VecDeque::new(),
            next_id: 6,
        };
        for (id, priority) in [(1, 0), (2, 5), (3, 0), (4, 5), (5, -1)] {
            jobs.map.insert(id, queued(priority));
            jobs.queue.push_back(id);
        }
        // Job 4 was cancelled while queued: it must be skipped even though
        // it ties job 2 for the highest priority.
        jobs.map.get_mut(&4).expect("job 4").state = JobState::Cancelled;
        let mut order = Vec::new();
        while let Some(id) = jobs.claim_next() {
            jobs.map.get_mut(&id).expect("claimed job").state = JobState::Running;
            order.push(id);
        }
        assert_eq!(order, vec![2, 1, 3, 5], "priority desc, FIFO within a level");
    }
}
