//! Event-logging sniffers and Ethernet congestion: demonstrates the VPCM's
//! second job (section 4.2) — when exhaustive event logging outruns the
//! statistics link, the virtual platform clock freezes instead of losing
//! data, stretching the modeled FPGA time.
//!
//! ```sh
//! cargo run --release --example event_logging
//! ```

use temu::framework::{EmulationConfig, ThermalEmulation};
use temu::platform::{Machine, PlatformConfig, SnifferMode};
use temu::power::floorplans::fig4b_arm11;
use temu::workloads::matrix::{self, MatrixConfig};

fn run(mode: SnifferMode) -> (f64, u64, usize) {
    let mut platform = PlatformConfig::paper_thermal(4);
    platform.sniffer_mode = mode;
    let mut machine = Machine::new(platform).expect("valid");
    let workload = MatrixConfig { n: 16, iters: 100_000, cores: 4 };
    machine.load_program_all(&matrix::program(&workload).expect("assembles")).expect("fits");
    let mut emu = ThermalEmulation::new(machine, fig4b_arm11(), EmulationConfig::default()).expect("builds");
    let report = emu.run_windows(20).expect("runs");
    (report.fpga_seconds, report.aggregate.events_overflowed, emu.link().stats().frames as usize)
}

fn main() {
    println!("20 sampling windows of Matrix-TM under different sniffer modes:\n");
    let (fpga_count, _, frames_count) = run(SnifferMode::CountLogging);
    println!("count-logging : FPGA time {fpga_count:.4} s, {frames_count} MAC frames, no congestion possible");

    for capacity in [1 << 14, 1 << 10] {
        let (fpga, dropped, frames) = run(SnifferMode::EventLogging { capacity });
        println!(
            "event-logging ({capacity:>6}-event buffer): FPGA time {fpga:.4} s, {frames} MAC frames, {dropped} events overflowed",
        );
    }
    println!("\nThe count-logging mode is why the paper can add 'practically an unlimited");
    println!("number' of sniffers without slowing emulation; event logging is reserved for");
    println!("deep debugging and pays with VPCM clock-freeze time.");
}
