//! Sampling-window statistics snapshots — the payload the statistics
//! extraction system ships to the host-side thermal tool every window.

use temu_cpu::CoreStats;
use temu_interconnect::IcStats;
use temu_mem::{CacheStats, MemStats};
use temu_state::{StateError, StateReader, StateWriter};

/// Everything the count-logging sniffers collected over one sampling window
/// (or over a whole run).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WindowStats {
    /// First virtual cycle of the window.
    pub start_cycle: u64,
    /// One-past-last virtual cycle of the window.
    pub end_cycle: u64,
    /// Per-core processor sniffer counters.
    pub cores: Vec<CoreStats>,
    /// Per-core instruction-cache counters.
    pub icaches: Vec<CacheStats>,
    /// Per-core data-cache counters.
    pub dcaches: Vec<CacheStats>,
    /// Per-core private-memory counters.
    pub private_mems: Vec<MemStats>,
    /// Shared main-memory counters.
    pub shared_mem: MemStats,
    /// Interconnect counters.
    pub interconnect: IcStats,
    /// VPCM freeze cycles caused by physically slow devices.
    pub freeze_mem: u64,
    /// VPCM freeze cycles caused by statistics-link congestion.
    pub freeze_link: u64,
    /// Events sitting in the sniffer buffer at window end.
    pub events_pending: usize,
    /// Events that found the buffer full during the window.
    pub events_overflowed: u64,
}

impl WindowStats {
    /// Window length in virtual cycles.
    pub fn cycles(&self) -> u64 {
        self.end_cycle - self.start_cycle
    }

    /// Instructions retired across all cores.
    pub fn total_instructions(&self) -> u64 {
        self.cores.iter().map(|c| c.instructions).sum()
    }

    /// Folds another window into this one (used to aggregate a whole run).
    pub fn merge(&mut self, other: &WindowStats) {
        self.end_cycle = self.end_cycle.max(other.end_cycle);
        if self.cores.is_empty() {
            // Adopting the first window's start matters for aggregates that
            // begin mid-run (per-call deltas): a default start of 0 would
            // stretch `cycles()` back over everything before them.
            self.start_cycle = other.start_cycle;
            self.cores = vec![CoreStats::default(); other.cores.len()];
            self.icaches = vec![CacheStats::default(); other.icaches.len()];
            self.dcaches = vec![CacheStats::default(); other.dcaches.len()];
            self.private_mems = vec![MemStats::default(); other.private_mems.len()];
        }
        for (a, b) in self.cores.iter_mut().zip(&other.cores) {
            a.merge(b);
        }
        for (a, b) in self.icaches.iter_mut().zip(&other.icaches) {
            a.merge(b);
        }
        for (a, b) in self.dcaches.iter_mut().zip(&other.dcaches) {
            a.merge(b);
        }
        for (a, b) in self.private_mems.iter_mut().zip(&other.private_mems) {
            a.merge(b);
        }
        self.shared_mem.merge(&other.shared_mem);
        self.interconnect.merge(&other.interconnect);
        self.freeze_mem += other.freeze_mem;
        self.freeze_link += other.freeze_link;
        self.events_pending = other.events_pending;
        self.events_overflowed += other.events_overflowed;
    }

    /// Serializes the snapshot into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.start_cycle);
        w.u64(self.end_cycle);
        w.usize(self.cores.len());
        for c in &self.cores {
            c.save_state(w);
        }
        w.usize(self.icaches.len());
        for c in &self.icaches {
            c.save_state(w);
        }
        w.usize(self.dcaches.len());
        for c in &self.dcaches {
            c.save_state(w);
        }
        w.usize(self.private_mems.len());
        for m in &self.private_mems {
            m.save_state(w);
        }
        self.shared_mem.save_state(w);
        self.interconnect.save_state(w);
        w.u64(self.freeze_mem);
        w.u64(self.freeze_link);
        w.usize(self.events_pending);
        w.u64(self.events_overflowed);
    }

    /// Restores a snapshot saved by [`WindowStats::save_state`], replacing
    /// the current contents entirely.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.start_cycle = r.u64()?;
        self.end_cycle = r.u64()?;
        // Grow-on-demand (no pre-allocation from the untrusted count: a
        // corrupt length fails on EOF instead of exhausting memory).
        let n = r.usize()?;
        self.cores = Vec::new();
        for _ in 0..n {
            let mut c = CoreStats::default();
            c.load_state(r)?;
            self.cores.push(c);
        }
        let n = r.usize()?;
        self.icaches = Vec::new();
        for _ in 0..n {
            let mut c = CacheStats::default();
            c.load_state(r)?;
            self.icaches.push(c);
        }
        let n = r.usize()?;
        self.dcaches = Vec::new();
        for _ in 0..n {
            let mut c = CacheStats::default();
            c.load_state(r)?;
            self.dcaches.push(c);
        }
        let n = r.usize()?;
        self.private_mems = Vec::new();
        for _ in 0..n {
            let mut m = MemStats::default();
            m.load_state(r)?;
            self.private_mems.push(m);
        }
        self.shared_mem.load_state(r)?;
        self.interconnect.load_state(r)?;
        self.freeze_mem = r.u64()?;
        self.freeze_link = r.u64()?;
        self.events_pending = r.usize()?;
        self.events_overflowed = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_aggregates_and_tracks_window_end() {
        let mut a = WindowStats {
            start_cycle: 0,
            end_cycle: 100,
            cores: vec![CoreStats { instructions: 10, ..CoreStats::default() }],
            icaches: vec![CacheStats::default()],
            dcaches: vec![CacheStats::default()],
            private_mems: vec![MemStats::default()],
            freeze_mem: 5,
            ..WindowStats::default()
        };
        let b = WindowStats {
            start_cycle: 100,
            end_cycle: 200,
            cores: vec![CoreStats { instructions: 7, ..CoreStats::default() }],
            icaches: vec![CacheStats::default()],
            dcaches: vec![CacheStats::default()],
            private_mems: vec![MemStats::default()],
            freeze_mem: 2,
            ..WindowStats::default()
        };
        a.merge(&b);
        assert_eq!(a.end_cycle, 200);
        assert_eq!(a.total_instructions(), 17);
        assert_eq!(a.freeze_mem, 7);
        assert_eq!(a.cycles(), 200);
    }

    #[test]
    fn merge_into_empty_adopts_shape() {
        let mut empty = WindowStats::default();
        let b = WindowStats {
            cores: vec![CoreStats { instructions: 3, ..CoreStats::default() }; 2],
            icaches: vec![CacheStats::default(); 2],
            dcaches: vec![CacheStats::default(); 2],
            private_mems: vec![MemStats::default(); 2],
            ..WindowStats::default()
        };
        empty.merge(&b);
        assert_eq!(empty.cores.len(), 2);
        assert_eq!(empty.total_instructions(), 6);
    }
}
