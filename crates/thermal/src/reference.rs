//! Closed-form references the RC model is validated against.
//!
//! The paper calibrated its model "against a 3D-finite element analysis
//! given by an industrial partner", which we cannot reproduce; instead the
//! solver is validated against exact 1-D solutions of the same physics
//! (uniform power over the die makes the stack one-dimensional) plus grid
//! refinement studies — the same role calibration played in the paper, from
//! a reproducible source. See DESIGN.md §2 for the substitution note.

use crate::grid::GridConfig;

/// Steady-state temperature of the *bottom-cell centre* of a uniformly
/// powered die under the discretized layer stack, with linear silicon
/// conductivity `k_si`.
///
/// Derivation: with uniform power `P` over die area `A`, the lateral flows
/// vanish and the network is a series chain per unit area. From the bottom
/// silicon cell centre to ambient the resistances telescope to
///
/// ```text
/// R = (h_si - h_si/(2·n_si)) / (k_si·A)   (silicon above the cell centre)
///   +  h_cu / (k_cu·A)                    (full spreader incl. both halves)
///   +  R_pkg                              (package-to-air)
/// ```
///
/// so `T = T_amb + P·R`. The RC solver must reproduce this to discretization
/// accuracy — it is exact for the same `n_si`.
pub fn analytic_stack_temp(power_w: f64, die_area_m2: f64, cfg: &GridConfig, k_si: f64) -> f64 {
    let h_si = cfg.props.silicon_thickness_um * 1e-6;
    let h_cu = cfg.props.copper_thickness_um * 1e-6;
    let r_si = (h_si - h_si / (2.0 * cfg.si_layers as f64)) / (k_si * die_area_m2);
    let r_cu = h_cu / (cfg.props.copper_k * die_area_m2);
    let r = r_si + r_cu + cfg.package_to_air;
    cfg.ambient_k + power_w * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_temp_scales_with_power() {
        let cfg = GridConfig::default();
        let t1 = analytic_stack_temp(1.0, 4e-6, &cfg, 150.0);
        let t2 = analytic_stack_temp(2.0, 4e-6, &cfg, 150.0);
        assert!(t2 > t1);
        assert!(((t2 - cfg.ambient_k) - 2.0 * (t1 - cfg.ambient_k)).abs() < 1e-9, "linear in power");
    }

    #[test]
    fn package_resistance_dominates_low_power_stack() {
        // For a 4 mm² die the conduction resistances are ~ 15-75 K/W; the
        // 20 K/W package should be a visible but not overwhelming part.
        let cfg = GridConfig::default();
        let t = analytic_stack_temp(1.0, 4e-6, &cfg, 150.0);
        let rise = t - cfg.ambient_k;
        assert!(rise > 20.0, "at least the package drop: {rise}");
        assert!(rise < 200.0, "sane overall resistance: {rise}");
    }
}
