//! # temu-serve — the caching emulation job server
//!
//! Turns the workspace's experiment engine
//! ([`Scenario`](temu_framework::Scenario) →
//! [`Campaign`](temu_framework::Campaign) →
//! [`Sweep`](temu_framework::Sweep)) into shared, network-reachable
//! infrastructure: a `std`-only TCP server speaking newline-delimited
//! JSON, executing submitted [`SweepSpec`](temu_framework::SweepSpec)s on
//! a bounded job queue against one process-wide
//! [`ResultCache`](temu_framework::ResultCache), and streaming per-point
//! progress back to the submitter.
//!
//! Every client of the cache — a script resubmitting an overlapping
//! design-space grid, a second connection watching a long job, a restart
//! reloading the on-disk store — sees the same content-keyed results: a
//! scenario configuration is only ever emulated once per store.
//!
//! ```no_run
//! use temu_serve::{Client, ServeConfig, Server};
//! use temu_framework::SweepSpec;
//!
//! let handle = Server::spawn(ServeConfig {
//!     addr: String::from("127.0.0.1:0"),
//!     ..ServeConfig::default()
//! }).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let spec = SweepSpec::named("smoke").unwrap();
//! let outcome = client.submit(&spec, true, |event| println!("{event}")).unwrap();
//! assert!(outcome.done.unwrap().ok);
//! handle.shutdown();
//! ```
//!
//! The two bins wrap exactly this: `temu-serve` hosts [`Server::run`];
//! `temu-client` drives [`Client`] (submit a spec file or named preset,
//! pretty-print the streamed progress, exit nonzero on failed points).
//! See [`protocol`] for the wire format.

//! # Fault tolerance
//!
//! The server is crash-safe: job transitions are journaled
//! ([`journal`]) and replayed on restart, every sweep checkpoints its
//! result store between grid points — and, with `--window-checkpoint N`,
//! persists each running point's serialized run state every N sampling
//! windows ([`checkpoints`]), so a `SIGKILL` mid-point resumes from the
//! last window boundary instead of re-running the point. Accepted
//! connections carry socket deadlines and bounded frames
//! ([`protocol::read_frame`]), the client retries transient failures with
//! exponential backoff ([`RetryPolicy`]), and a [`fault`]-injection
//! harness (`TEMU_FAULT`) drives the chaos tests that prove all of it.

pub mod checkpoints;
pub mod cli;
pub mod client;
pub mod fault;
pub mod journal;
pub mod protocol;
pub mod server;

pub use checkpoints::{CheckpointReplay, CheckpointStore};
pub use client::{Client, ClientError, DoneSummary, RetryPolicy, Submission};
pub use fault::FaultPlan;
pub use journal::{Journal, JournalReplay, RecoveredJob};
pub use protocol::{
    coded_error_line, error_line, read_frame, spec_from_document, ProtocolError, Request, ADDR_ENV,
    DEFAULT_ADDR, MAX_FRAME_LEN,
};
pub use server::{ServeConfig, Server, ServerHandle};
