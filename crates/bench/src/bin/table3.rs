//! Regenerates **Table 3**: "Timing comparisons between our MPSoC emulation
//! framework and MPARM".
//!
//! For every row, the workload runs to completion on the fast engine (whose
//! cycle count, divided by the 100 MHz FPGA clock, *is* the paper's
//! "HW Emulator" column — real-time execution), and on the signal-level
//! cycle-driven baseline, whose wall-clock time plays MPARM's role. The
//! Matrix-TM row's baseline is time-boxed and extrapolated, exactly as the
//! paper's two-day MPARM figure covered only 0.18 s of emulated execution.
//!
//! Workloads are scaled by `TEMU_SCALE` (default 0.05 of the paper's sizes);
//! the headline comparisons — who wins, how the gap grows with system size —
//! are scale-independent because both columns scale with the same cycle
//! count.

use std::time::Duration;
use temu_bench::{fmt_seconds, measure_row, scale, Workload};
use temu_platform::PlatformConfig;
use temu_workloads::dithering::DitherConfig;
use temu_workloads::matrix::MatrixConfig;

struct PaperRow {
    name: &'static str,
    platform: PlatformConfig,
    workload: Workload,
    paper_mparm_s: f64,
    paper_emu_s: f64,
    paper_speedup: f64,
    des_budget: Duration,
}

fn main() {
    let s = scale();
    // The paper's Matrix run is ~120 Mcycles (1.2 s at 100 MHz); per-core
    // iteration counts below hit that at TEMU_SCALE=1.
    let matrix_iters = ((120.0 * s) as u32).max(1); // n=20 → ~1 Mcycle/iter/core
    let dither_cfg = |cores| DitherConfig { width: 128, height: 128, images: 2, cores };
    let tm_iters = ((1200.0 * s) as u32).max(2);

    let rows = vec![
        PaperRow {
            name: "Matrix (one core)",
            platform: PlatformConfig::paper_bus(1),
            workload: Workload::Matrix(MatrixConfig { n: 20, iters: matrix_iters, cores: 1 }),
            paper_mparm_s: 106.0,
            paper_emu_s: 1.2,
            paper_speedup: 88.0,
            des_budget: Duration::from_secs(120),
        },
        PaperRow {
            name: "Matrix (4 cores)",
            platform: PlatformConfig::paper_bus(4),
            workload: Workload::Matrix(MatrixConfig { n: 20, iters: matrix_iters, cores: 4 }),
            paper_mparm_s: 323.0,
            paper_emu_s: 1.2,
            paper_speedup: 269.0,
            des_budget: Duration::from_secs(120),
        },
        PaperRow {
            name: "Matrix (8 cores)",
            platform: PlatformConfig::paper_bus(8),
            workload: Workload::Matrix(MatrixConfig { n: 20, iters: matrix_iters, cores: 8 }),
            paper_mparm_s: 797.0,
            paper_emu_s: 1.2,
            paper_speedup: 664.0,
            des_budget: Duration::from_secs(150),
        },
        PaperRow {
            name: "Dithering (4 cores-bus)",
            platform: PlatformConfig::paper_bus(4),
            workload: Workload::Dither(dither_cfg(4), 2006),
            paper_mparm_s: 155.0,
            paper_emu_s: 0.18,
            paper_speedup: 861.0,
            des_budget: Duration::from_secs(120),
        },
        PaperRow {
            name: "Dithering (4 cores-NoC)",
            platform: PlatformConfig::paper_noc(4),
            workload: Workload::Dither(dither_cfg(4), 2006),
            paper_mparm_s: 195.0,
            paper_emu_s: 0.17,
            paper_speedup: 1147.0,
            des_budget: Duration::from_secs(120),
        },
        PaperRow {
            name: "Matrix-TM (4 cores-NoC)",
            platform: PlatformConfig::paper_thermal(4),
            workload: Workload::Matrix(MatrixConfig { n: 16, iters: tm_iters, cores: 4 }),
            paper_mparm_s: 2.0 * 86_400.0,
            paper_emu_s: 302.0,
            paper_speedup: 1612.0,
            des_budget: Duration::from_secs(20), // time-boxed + extrapolated, like the paper
        },
    ];

    println!("Table 3: timing comparison, HW/SW emulation framework vs cycle-accurate simulation");
    println!("(workload scale TEMU_SCALE={s}; paper columns shown for reference)\n");
    println!(
        "{:<26} {:>14} {:>14} {:>9} | {:>12} {:>12} {:>9} | {:>10} {:>10}",
        "workload", "baseline", "HW emulator", "speedup", "paper MPARM", "paper emu", "paper x", "DES kHz", "emu MIPS"
    );
    let mut speedups = Vec::new();
    for row in rows {
        let m = measure_row(&row.platform, &row.workload, row.des_budget);
        let des_str = format!(
            "{}{}",
            fmt_seconds(m.des_full_seconds),
            if m.des_extrapolated { "*" } else { "" }
        );
        println!(
            "{:<26} {:>14} {:>14} {:>8.0}x | {:>12} {:>12} {:>8.0}x | {:>10.0} {:>10.1}",
            row.name,
            des_str,
            fmt_seconds(m.fast.fpga_seconds),
            m.speedup(),
            fmt_seconds(row.paper_mparm_s),
            fmt_seconds(row.paper_emu_s),
            row.paper_speedup,
            m.des.effective_hz() / 1e3,
            m.fast.instructions as f64 / m.fast.wall.as_secs_f64().max(1e-9) / 1e6,
        );
        speedups.push((row.name, m.speedup(), row.paper_speedup));
    }
    println!("\n(* = baseline time-boxed and extrapolated from its measured rate,");
    println!("   as the paper's 2-day MPARM figure covered only 0.18 s of execution)\n");
    println!("Shape checks against the paper:");
    let m1 = speedups[0].1;
    let m4 = speedups[1].1;
    let m8 = speedups[2].1;
    println!(
        "  speedup grows with core count: 1 core {:.0}x -> 4 cores {:.0}x -> 8 cores {:.0}x  [{}]",
        m1,
        m4,
        m8,
        if m8 > m4 && m4 > m1 { "OK, matches the paper's 88->269->664 trend" } else { "MISMATCH" }
    );
    println!(
        "  NoC row beats its bus row in speedup: {:.0}x vs {:.0}x  [{}]",
        speedups[4].1,
        speedups[3].1,
        if speedups[4].1 > speedups[3].1 * 0.8 { "OK (paper: 1147 vs 861)" } else { "MISMATCH" }
    );
    println!(
        "  Matrix-TM shows the largest gap: {:.0}x  [{}]",
        speedups[5].1,
        if speedups[5].1 >= m4 { "OK (paper: 1612x)" } else { "MISMATCH" }
    );
}
