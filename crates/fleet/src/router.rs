//! The fleet front-end: speaks the `temu-serve` protocol to unmodified
//! clients and fans submissions across the member table.
//!
//! One connection thread per client, one outbound member connection per
//! in-flight request — the router holds no job state beyond the route
//! table (router job id → member + member job id), so it is restartable:
//! a restarted router loses only the id mapping, never results (those
//! live in the members' content-keyed stores, and resubmitting through
//! the new router is a cache hit on the same member).
//!
//! # Failover
//!
//! A submission tries members in rendezvous order (up members first).
//! Failures divide into:
//!
//! * **refused before ack** (connect failure, IO error, `queue_full`):
//!   silently try the next member — the client sees one ack from
//!   whichever member accepted;
//! * **lost after ack mid-stream**: the router *resubmits* the same spec
//!   to the next member and keeps streaming under the original router
//!   job id (the fresh ack is swallowed). This is safe because results
//!   are memoized by content key — points the dead member completed and
//!   synced replay from the shared store as cache-hit events, not
//!   re-executions;
//! * **all members exhausted**: a submission that was never acked gets a
//!   `no_members` coded error; one that was acked gets a synthesized
//!   failed `done` event (resubmitting is the recovery path, and it is
//!   idempotent).

use crate::member::MemberTable;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;
use temu_framework::{json_escape, JsonValue, SweepSpec};
use temu_serve::{
    coded_error_line, error_line, read_frame, Client, ClientError, ProtocolError, Request,
    MAX_FRAME_LEN,
};

/// Default router listen address (one above the serve default).
pub const DEFAULT_ROUTER_ADDR: &str = "127.0.0.1:7182";

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address; port 0 requests an ephemeral port.
    pub addr: String,
    /// Member `temu-serve` addresses (the static fleet).
    pub members: Vec<String>,
    /// Health-probe period: each member's `stats` is polled this often
    /// and the member marked up/down accordingly.
    pub probe_interval: Duration,
    /// Read/write deadline on accepted client connections.
    pub io_timeout: Option<Duration>,
    /// Routes (router job id → member job) kept before the oldest are
    /// evicted; evicted jobs answer `status`/`watch` with "no such job"
    /// even though the member still remembers them.
    pub history_limit: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: String::from(DEFAULT_ROUTER_ADDR),
            members: Vec::new(),
            probe_interval: Duration::from_secs(2),
            io_timeout: Some(Duration::from_secs(30)),
            history_limit: 1024,
        }
    }
}

struct Route {
    member: usize,
    member_job: u64,
    total: u64,
}

struct Routes {
    map: HashMap<u64, Route>,
    order: VecDeque<u64>,
    next_id: u64,
}

impl Routes {
    fn insert(&mut self, id: u64, route: Route, limit: usize) {
        self.map.insert(id, route);
        self.order.push_back(id);
        while self.order.len() > limit {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            }
        }
    }
}

struct Shared {
    table: MemberTable,
    routes: Mutex<Routes>,
    io_timeout: Option<Duration>,
    history_limit: usize,
    probe_interval: Duration,
    shutdown: AtomicBool,
    submissions: AtomicU64,
    failovers: AtomicU64,
}

impl Shared {
    fn lock_routes(&self) -> MutexGuard<'_, Routes> {
        self.routes.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Handle to a router running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the router (idempotent) and joins its thread. Members keep
    /// running — they are independent processes.
    pub fn shutdown(mut self) {
        request_shutdown(&self.shared, self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn request_shutdown(shared: &Shared, addr: SocketAddr) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(addr);
}

impl Router {
    /// Binds the listen socket.
    ///
    /// # Errors
    ///
    /// A member-less configuration (`InvalidInput`) or any socket error.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        if config.members.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one --member",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            table: MemberTable::new(config.members),
            routes: Mutex::new(Routes { map: HashMap::new(), order: VecDeque::new(), next_id: 1 }),
            io_timeout: config.io_timeout,
            history_limit: config.history_limit.max(1),
            probe_interval: config.probe_interval,
            shutdown: AtomicBool::new(false),
            submissions: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
        });
        Ok(Router { listener, shared })
    }

    /// The bound address (resolves an ephemeral port request).
    ///
    /// # Errors
    ///
    /// The socket's address lookup failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The member table (exposed so tests can compute the rendezvous
    /// owner of a spec the same way the router will).
    #[must_use]
    pub fn members(&self) -> &MemberTable {
        &self.shared.table
    }

    /// Runs the router on the current thread until a `shutdown` request:
    /// spawns the health prober, then accepts and serves connections.
    pub fn run(self) {
        let prober = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || prober_loop(&shared))
        };
        for stream in self.listener.incoming() {
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = serve_connection(&shared, stream);
            });
        }
        let _ = prober.join();
    }

    /// Runs the router on a background thread, returning a handle with
    /// the bound address.
    ///
    /// # Errors
    ///
    /// Any [`Router::bind`] error.
    pub fn spawn(config: RouterConfig) -> std::io::Result<RouterHandle> {
        let router = Router::bind(config)?;
        let addr = router.local_addr()?;
        let shared = Arc::clone(&router.shared);
        let thread = std::thread::spawn(move || router.run());
        Ok(RouterHandle { addr, shared, thread: Some(thread) })
    }
}

/// Polls every member's `stats` each interval, marking members up/down.
/// Probe verdicts use [`MemberTable::set_up`], so a member that stays
/// down doesn't accrue one "failure" per interval — the failure counter
/// tracks traffic, the prober tracks availability.
fn prober_loop(shared: &Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        probe_members(shared);
        let mut slept = Duration::ZERO;
        while slept < shared.probe_interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let step = Duration::from_millis(50).min(shared.probe_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

fn probe_members(shared: &Shared) {
    for i in 0..shared.table.len() {
        let addr = shared.table.addr(i).to_string();
        let started = std::time::Instant::now();
        match Client::connect(&addr).and_then(|mut member| member.stats()) {
            Ok(frame) => {
                if temu_obs::enabled() {
                    // Successful probes only: a refused connect fails in
                    // microseconds and would drag the RTT quantiles to
                    // meaninglessness.
                    temu_obs::global().histogram("fleet.probe_rtt_ns").record_duration(started.elapsed());
                }
                shared.table.note_stats(i, frame);
                shared.table.set_up(i, true);
            }
            Err(_) => shared.table.set_up(i, false),
        }
    }
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(shared.io_timeout)?;
    stream.set_write_timeout(shared.io_timeout)?;
    let addr = stream.local_addr().ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, MAX_FRAME_LEN) {
            Ok(Some(line)) => line,
            Ok(None) => return Ok(()),
            Err(e @ ProtocolError::FrameTooLong { .. }) => {
                writeln!(writer, "{}", coded_error_line("frame_too_long", &e.to_string()))?;
                return Ok(());
            }
            Err(_) => return Ok(()),
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                writeln!(writer, "{}", error_line(&e))?;
                continue;
            }
        };
        match request {
            Request::Submit { spec, watch, priority } => {
                handle_submit(shared, &mut writer, *spec, watch, priority)?;
            }
            Request::Status { job } => forward_request(shared, &mut writer, job, Forward::Status)?,
            Request::Result { job } => forward_request(shared, &mut writer, job, Forward::Result)?,
            Request::Cancel { job } => forward_request(shared, &mut writer, job, Forward::Cancel)?,
            Request::Watch { job } => handle_watch(shared, &mut writer, job)?,
            Request::Stats => writeln!(writer, "{}", stats_response(shared))?,
            // The router's own registry view: probe RTTs, submit-ack
            // latency, spill/failover counters, per-member routed counts.
            // (Member-level job metrics come from asking each member's
            // `metrics` directly.)
            Request::Metrics => writeln!(
                writer,
                "{{\"ok\": true, \"fleet\": true, {}}}",
                temu_obs::global().snapshot().to_json_fields()
            )?,
            Request::Shutdown => {
                writeln!(writer, "{{\"ok\": true, \"shutdown\": true}}")?;
                if let Some(addr) = addr {
                    request_shutdown(shared, addr);
                }
                return Ok(());
            }
            // `Request` is non-exhaustive: refuse anything a future
            // protocol adds rather than guessing how to route it.
            _ => writeln!(writer, "{}", error_line("request not supported by the fleet router"))?,
        }
        writer.flush()?;
    }
}

/// Re-renders a member frame with its `"job"` field replaced by the
/// router-side job id (frames without the field pass through unchanged).
/// Safe to re-emit: [`JsonValue`]'s `Display` renders valid compact JSON.
fn with_job(frame: &JsonValue, id: u64) -> String {
    let JsonValue::Obj(fields) = frame else { return frame.to_string() };
    let patched: Vec<(String, JsonValue)> = fields
        .iter()
        .map(|(k, v)| {
            if k == "job" {
                #[allow(clippy::cast_precision_loss)]
                (k.clone(), JsonValue::Num(id as f64))
            } else {
                (k.clone(), v.clone())
            }
        })
        .collect();
    JsonValue::Obj(patched).to_string()
}

enum RelayOutcome {
    /// The member's terminal `done` event was forwarded.
    Done,
    /// The *client* went away; nothing left to serve.
    ClientGone(std::io::Error),
    /// The member connection failed mid-stream.
    MemberLost(ClientError),
}

/// Forwards member events to the client under the router job id until
/// the terminal event. The member-side read deadline is lifted — the
/// gap between points is one emulation run, unbounded a priori (a dead
/// member still surfaces immediately as a TCP reset).
fn relay_events(writer: &mut TcpStream, member: &mut Client, router_id: u64) -> RelayOutcome {
    if let Err(e) = member.set_read_deadline(None) {
        return RelayOutcome::MemberLost(e);
    }
    loop {
        let event = match member.recv() {
            Ok(event) => event,
            Err(e) => return RelayOutcome::MemberLost(e),
        };
        let line = with_job(&event, router_id);
        if let Err(e) = writeln!(writer, "{line}").and_then(|()| writer.flush()) {
            return RelayOutcome::ClientGone(e);
        }
        if event.get("event").and_then(JsonValue::as_str) == Some("done") {
            return RelayOutcome::Done;
        }
    }
}

#[allow(clippy::too_many_lines)]
fn handle_submit(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    spec: SweepSpec,
    watch: bool,
    priority: i64,
) -> std::io::Result<()> {
    // The shard key is the whole sweep's content key: the submission is
    // the retry/idempotency unit, so the identical resubmission must
    // reach the member holding the cached run (see the crate docs for
    // why not per-point sharding).
    let key = match spec.content_key() {
        Ok(key) => key,
        Err(e) => {
            writeln!(writer, "{}", error_line(&e.to_string()))?;
            return Ok(());
        }
    };
    let order = shared.table.rendezvous(key);
    // Up members first (mark-down steers new work away), then the down
    // ones as a last resort — a "down" member may be back between probes.
    let mut candidates: Vec<usize> = order.iter().copied().filter(|i| shared.table.up(*i)).collect();
    candidates.extend(order.iter().copied().filter(|i| !shared.table.up(*i)));
    let mut acked: Option<(u64, u64)> = None;
    let mut errors: Vec<String> = Vec::new();
    for i in candidates {
        let addr = shared.table.addr(i).to_string();
        let mut member = match Client::connect(&addr) {
            Ok(member) => member,
            Err(e) => {
                shared.table.mark_down(i);
                errors.push(format!("{addr}: {e}"));
                continue;
            }
        };
        let sent = temu_obs::time!("fleet.submit_ack_ns", {
            member
                .send(&Request::Submit { spec: Box::new(spec.clone()), watch, priority })
                .and_then(|()| member.recv())
        });
        let ack = match sent {
            Ok(ack) => ack,
            Err(e) => {
                shared.table.mark_down(i);
                errors.push(format!("{addr}: {e}"));
                continue;
            }
        };
        if ack.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            if ack.get("code").and_then(JsonValue::as_str) == Some("queue_full") {
                // Spill: a full member is healthy, just busy — the next
                // member in rendezvous order takes the job (a later
                // resubmission to the primary becomes a store refresh
                // away from a cache hit only if stores are shared; either
                // way the job runs).
                shared.failovers.fetch_add(1, Ordering::Relaxed);
                temu_obs::global().counter("fleet.spills").inc();
                errors.push(format!("{addr}: queue full"));
                continue;
            }
            // Any other refusal (bad spec, ...) is deterministic — every
            // member would say the same, so forward the verdict.
            writeln!(writer, "{ack}")?;
            return Ok(());
        }
        let member_job = ack.get("job").and_then(JsonValue::as_u64).unwrap_or(0);
        let total = ack.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
        shared.table.mark_routed(i);
        temu_obs::global().counter(&format!("fleet.member.{addr}.routed")).inc();
        let router_id = match acked {
            None => {
                let id = {
                    let mut routes = shared.lock_routes();
                    let id = routes.next_id;
                    routes.next_id += 1;
                    routes.insert(id, Route { member: i, member_job, total }, shared.history_limit);
                    id
                };
                shared.submissions.fetch_add(1, Ordering::Relaxed);
                temu_obs::global().counter("fleet.submissions").inc();
                // The ack an unmodified client expects, plus the member
                // annotation (ignored by clients that don't know it).
                writeln!(
                    writer,
                    "{{\"ok\": true, \"job\": {id}, \"total\": {total}, \"member\": \"{}\"}}",
                    json_escape(&addr)
                )?;
                writer.flush()?;
                acked = Some((id, total));
                id
            }
            Some((id, _)) => {
                // Failover resubmission: the client already holds its
                // ack, so repoint the route and swallow this one — the
                // job id the client sees never changes mid-stream.
                let mut routes = shared.lock_routes();
                if let Some(route) = routes.map.get_mut(&id) {
                    route.member = i;
                    route.member_job = member_job;
                }
                id
            }
        };
        if !watch {
            return Ok(());
        }
        match relay_events(writer, &mut member, router_id) {
            RelayOutcome::Done => return Ok(()),
            RelayOutcome::ClientGone(e) => return Err(e),
            RelayOutcome::MemberLost(e) => {
                // Resubmit to the next member in rendezvous order: safe
                // because the sweep is idempotent by content key —
                // whatever the lost member finished and synced replays
                // as cache-hit point events.
                shared.table.mark_down(i);
                shared.failovers.fetch_add(1, Ordering::Relaxed);
                temu_obs::global().counter("fleet.failovers").inc();
                errors.push(format!("{addr}: {e}"));
            }
        }
    }
    let detail = errors.join("; ");
    match acked {
        None => writeln!(
            writer,
            "{}",
            coded_error_line("no_members", &format!("every fleet member refused or failed: {detail}"))
        )?,
        Some((id, total)) => writeln!(
            writer,
            "{{\"event\": \"done\", \"job\": {id}, \"ok\": false, \"points\": {total}, \"executed\": 0, \"cache_hits\": 0, \"failed\": 0, \"wall_s\": 0.0, \"error\": \"every fleet member failed: {}\"}}",
            json_escape(&detail)
        )?,
    }
    Ok(())
}

enum Forward {
    Status,
    Result,
    Cancel,
}

fn forward_request(
    shared: &Arc<Shared>,
    writer: &mut TcpStream,
    router_job: u64,
    kind: Forward,
) -> std::io::Result<()> {
    let route = shared.lock_routes().map.get(&router_job).map(|r| (r.member, r.member_job));
    let Some((i, member_job)) = route else {
        writeln!(writer, "{}", error_line(&format!("no such job {router_job}")))?;
        return Ok(());
    };
    let addr = shared.table.addr(i).to_string();
    let mut member = match Client::connect(&addr) {
        Ok(member) => member,
        Err(e) => {
            shared.table.mark_down(i);
            writeln!(writer, "{}", coded_error_line("member_down", &format!("{addr}: {e}")))?;
            return Ok(());
        }
    };
    let result = match kind {
        Forward::Status => member.status(member_job),
        Forward::Result => member.result(member_job),
        Forward::Cancel => member.cancel(member_job),
    };
    match result {
        Ok(frame) => writeln!(writer, "{}", with_job(&frame, router_job))?,
        // The member's refusal text references *its* job id; the message
        // is still the truth about this route, so forward it.
        Err(ClientError::Server(message)) => writeln!(writer, "{}", error_line(&message))?,
        Err(e) => {
            shared.table.mark_down(i);
            writeln!(writer, "{}", coded_error_line("member_down", &format!("{addr}: {e}")))?;
        }
    }
    Ok(())
}

fn handle_watch(shared: &Arc<Shared>, writer: &mut TcpStream, router_job: u64) -> std::io::Result<()> {
    let route = shared.lock_routes().map.get(&router_job).map(|r| (r.member, r.member_job, r.total));
    let Some((i, member_job, total)) = route else {
        writeln!(writer, "{}", error_line(&format!("no such job {router_job}")))?;
        return Ok(());
    };
    let addr = shared.table.addr(i).to_string();
    let attach = Client::connect(&addr).and_then(|mut member| {
        member.send(&Request::Watch { job: member_job })?;
        let ack = member.recv()?;
        Ok((member, ack))
    });
    let (mut member, ack) = match attach {
        Ok(attached) => attached,
        Err(e) => {
            shared.table.mark_down(i);
            writeln!(writer, "{}", coded_error_line("member_down", &format!("{addr}: {e}")))?;
            return Ok(());
        }
    };
    if ack.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        writeln!(writer, "{}", with_job(&ack, router_job))?;
        return Ok(());
    }
    writeln!(writer, "{}", with_job(&ack, router_job))?;
    writer.flush()?;
    match relay_events(writer, &mut member, router_job) {
        RelayOutcome::Done => Ok(()),
        RelayOutcome::ClientGone(e) => Err(e),
        RelayOutcome::MemberLost(e) => {
            // A watch is an observer, not the submitter: the router can't
            // resubmit on its behalf (the submitter may already be doing
            // so). Close the stream with a failed done; resubmission
            // through the router is the idempotent recovery path.
            shared.table.mark_down(i);
            writeln!(
                writer,
                "{{\"event\": \"done\", \"job\": {router_job}, \"ok\": false, \"points\": {total}, \"executed\": 0, \"cache_hits\": 0, \"failed\": 0, \"wall_s\": 0.0, \"error\": \"fleet member {} lost mid-watch: {} — resubmit to recover\"}}",
                json_escape(&addr),
                json_escape(&e.to_string())
            )?;
            Ok(())
        }
    }
}

/// The router's aggregated `stats`: fleet-level counters, load sums over
/// *up* members, and the per-member breakdown. Members are probed live
/// here (and marked up/down) so `stats` reflects the fleet now, not as
/// of the last probe tick.
fn stats_response(shared: &Arc<Shared>) -> String {
    probe_members(shared);
    format!(
        "{{\"ok\": true, \"fleet\": true, \"members_up\": {}, \"submissions\": {}, \"failovers\": {}, \"routes\": {}, \"queue_depth\": {}, \"running\": {}, \"workers\": {}, \"members\": {}}}",
        shared.table.up_count(),
        shared.submissions.load(Ordering::Relaxed),
        shared.failovers.load(Ordering::Relaxed),
        shared.lock_routes().map.len(),
        shared.table.sum_stat("queue_depth"),
        shared.table.sum_stat("running"),
        shared.table.sum_stat("workers"),
        shared.table.members_json(),
    )
}
