//! The TE32 core: fetch/decode/execute with cycle accounting.
//!
//! Execution is split into micro-phases: [`Cpu::step`] first performs the
//! instruction fetch and execute phase; if the instruction needs a data
//! access, the core parks it as a pending operation and the *next* `step`
//! call performs it. The emulation engine always steps the core with the
//! smallest local time, so splitting the phases guarantees that shared
//! resources (bus, NoC links) see requests in nondecreasing global time —
//! which is what keeps the fast engine cycle-exact against the signal-level
//! `temu-des` baseline.

use crate::port::MemoryPort;
use crate::regfile::RegFile;
use crate::stats::CoreStats;
use std::error::Error;
use std::fmt;
use temu_isa::{DecodeError, Instr, Reg, Width};
use temu_mem::MemError;
use temu_state::{StateError, StateReader, StateWriter};

/// Core timing configuration (execute-phase extras).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpuConfig {
    /// Extra cycles for a taken branch or jump (pipeline refill).
    pub branch_penalty: u32,
    /// Extra cycles for `mul`/`mulh`.
    pub mul_extra: u32,
    /// Extra cycles for `div`/`rem` (iterative divider).
    pub div_extra: u32,
}

impl Default for CpuConfig {
    fn default() -> CpuConfig {
        CpuConfig { branch_penalty: 2, mul_extra: 2, div_extra: 31 }
    }
}

/// Result of one [`Cpu::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// A micro-phase completed; the core remains runnable.
    Executed,
    /// The core is halted (either it just executed `halt` or it was halted
    /// before the call).
    Halted,
}

/// Execution fault, carrying the faulting PC for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuError {
    /// The fetched word does not decode.
    Decode {
        /// PC of the undecodable word.
        pc: u32,
        /// The fetched word.
        word: u32,
        /// Decoder diagnosis.
        err: DecodeError,
    },
    /// A memory access faulted.
    Mem {
        /// PC of the faulting instruction.
        pc: u32,
        /// The memory system diagnosis.
        err: MemError,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Decode { pc, word, err } => {
                write!(f, "undecodable instruction {word:#010x} at pc {pc:#010x}: {err}")
            }
            CpuError::Mem { pc, err } => write!(f, "memory fault at pc {pc:#010x}: {err}"),
        }
    }
}

impl Error for CpuError {}

/// Parked data access awaiting its micro-phase.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DataOp {
    Load { rd: Reg, addr: u32, width: Width, signed: bool },
    Store { addr: u32, width: Width, value: u32 },
    Tas { rd: Reg, addr: u32 },
}

/// One TE32 core instance.
#[derive(Clone, Debug)]
pub struct Cpu {
    id: usize,
    cfg: CpuConfig,
    regs: RegFile,
    pc: u32,
    time: u64,
    halted: bool,
    pending: Option<(DataOp, u32)>, // (operation, pc of the owning instruction)
    stats: CoreStats,
}

impl Cpu {
    /// Creates core `id` with the given timing configuration, at PC 0 and
    /// local cycle 0.
    pub fn new(id: usize, cfg: CpuConfig) -> Cpu {
        Cpu { id, cfg, regs: RegFile::new(), pc: 0, time: 0, halted: false, pending: None, stats: CoreStats::default() }
    }

    /// The core's index on the platform.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The core's local cycle counter.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Whether the core has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the core is between the fetch and data phases of a memory
    /// instruction.
    pub fn mid_instruction(&self) -> bool {
        self.pending.is_some()
    }

    /// Read access to the register file.
    pub fn regs(&self) -> &RegFile {
        &self.regs
    }

    /// Mutable access to the register file (used by loaders to set the stack
    /// pointer and argument registers).
    pub fn regs_mut(&mut self) -> &mut RegFile {
        &mut self.regs
    }

    /// Statistics accumulated since the last [`Cpu::take_stats`].
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Returns and resets the statistics.
    pub fn take_stats(&mut self) -> CoreStats {
        std::mem::take(&mut self.stats)
    }

    /// Adds externally-imposed idle cycles (clock freezes, post-halt time)
    /// and advances the local clock accordingly.
    pub fn add_idle(&mut self, cycles: u64) {
        self.stats.idle_cycles += cycles;
        self.time += cycles;
    }

    /// Resets the core to `entry`, clearing registers, time and statistics.
    pub fn reset(&mut self, entry: u32) {
        self.regs = RegFile::new();
        self.pc = entry;
        self.time = 0;
        self.halted = false;
        self.pending = None;
        self.stats = CoreStats::default();
    }

    /// Executes one micro-phase (fetch/execute, or a parked data access)
    /// through `port`.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] if the fetched word does not decode or a memory
    /// access faults; the core's state is left at the faulting instruction.
    pub fn step<P: MemoryPort + ?Sized>(&mut self, port: &mut P) -> Result<StepOutcome, CpuError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        if let Some((op, pc)) = self.pending.take() {
            return self.data_phase(port, op, pc);
        }
        self.fetch_phase(port)
    }

    fn data_phase<P: MemoryPort + ?Sized>(&mut self, port: &mut P, op: DataOp, pc: u32) -> Result<StepOutcome, CpuError> {
        let t = self.time;
        let reply = match op {
            DataOp::Load { addr, width, .. } => port.read(self.id, addr, width, t),
            DataOp::Store { addr, width, value } => port.write(self.id, addr, width, value, t),
            DataOp::Tas { addr, .. } => port.tas(self.id, addr, t),
        }
        .map_err(|err| {
            self.pending = Some((op, pc)); // stay at the faulting phase
            CpuError::Mem { pc, err }
        })?;
        match op {
            DataOp::Load { rd, width, signed, .. } => {
                self.regs.write(rd, extend(reply.value, width, signed));
                self.stats.loads += 1;
            }
            DataOp::Store { .. } => self.stats.stores += 1,
            DataOp::Tas { rd, .. } => {
                self.regs.write(rd, reply.value);
                self.stats.loads += 1;
            }
        }
        let elapsed = reply.done_at - t;
        self.stats.stall_cycles += reply.stall;
        self.stats.active_cycles += elapsed - reply.stall;
        self.stats.instructions += 1;
        self.time = reply.done_at;
        self.pc = pc.wrapping_add(4);
        Ok(StepOutcome::Executed)
    }

    fn fetch_phase<P: MemoryPort + ?Sized>(&mut self, port: &mut P) -> Result<StepOutcome, CpuError> {
        let t0 = self.time;
        let pc = self.pc;
        let fetch = port.fetch(self.id, pc, t0).map_err(|err| CpuError::Mem { pc, err })?;
        let mut t = fetch.done_at;
        let instr = Instr::decode(fetch.value).map_err(|err| CpuError::Decode { pc, word: fetch.value, err })?;

        let mut next_pc = pc.wrapping_add(4);
        let mut halted_now = false;
        let mut retired = true;
        match instr {
            Instr::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.regs.read(rs1), self.regs.read(rs2));
                if op.is_mul() {
                    self.stats.muls += 1;
                    t += u64::from(self.cfg.mul_extra);
                } else if op.is_div() {
                    self.stats.divs += 1;
                    t += u64::from(self.cfg.div_extra);
                }
                self.regs.write(rd, v);
            }
            Instr::AluImm { op, rd, rs1, imm } => {
                self.regs.write(rd, op.eval(self.regs.read(rs1), imm));
            }
            Instr::ShiftImm { op, rd, rs1, sh } => {
                self.regs.write(rd, op.eval(self.regs.read(rs1), sh));
            }
            Instr::Lui { rd, imm } => {
                self.regs.write(rd, u32::from(imm) << 16);
            }
            Instr::Load { width, signed, rd, rs1, off } => {
                let addr = self.regs.read(rs1).wrapping_add(off as i32 as u32);
                self.pending = Some((DataOp::Load { rd, addr, width, signed }, pc));
                retired = false;
            }
            Instr::Store { width, rs2, rs1, off } => {
                let addr = self.regs.read(rs1).wrapping_add(off as i32 as u32);
                self.pending = Some((DataOp::Store { addr, width, value: self.regs.read(rs2) }, pc));
                retired = false;
            }
            Instr::Tas { rd, rs1, off } => {
                let addr = self.regs.read(rs1).wrapping_add(off as i32 as u32);
                self.pending = Some((DataOp::Tas { rd, addr }, pc));
                retired = false;
            }
            Instr::Branch { cond, rs1, rs2, off } => {
                self.stats.branches += 1;
                if cond.eval(self.regs.read(rs1), self.regs.read(rs2)) {
                    self.stats.taken_branches += 1;
                    next_pc = branch_target(pc, i32::from(off));
                    t += u64::from(self.cfg.branch_penalty);
                }
            }
            Instr::Jal { off } => {
                self.regs.write(Reg::RA, pc.wrapping_add(4));
                next_pc = branch_target(pc, off);
                t += u64::from(self.cfg.branch_penalty);
                self.stats.branches += 1;
                self.stats.taken_branches += 1;
            }
            Instr::Jalr { rd, rs1, off } => {
                let target = self.regs.read(rs1).wrapping_add(off as i32 as u32) & !3;
                self.regs.write(rd, pc.wrapping_add(4));
                next_pc = target;
                t += u64::from(self.cfg.branch_penalty);
                self.stats.branches += 1;
                self.stats.taken_branches += 1;
            }
            Instr::Halt => {
                halted_now = true;
            }
        }

        let elapsed = t - t0;
        self.stats.stall_cycles += fetch.stall;
        self.stats.active_cycles += elapsed - fetch.stall;
        self.time = t;
        if retired {
            self.pc = next_pc;
            self.stats.instructions += 1;
        }
        if halted_now {
            self.halted = true;
            return Ok(StepOutcome::Halted);
        }
        Ok(StepOutcome::Executed)
    }
}

impl Cpu {
    /// Serializes the full architectural and micro-architectural state:
    /// registers, PC, local clock, halt flag, a parked data access (a core
    /// *can* sit between the fetch and data phases of a memory instruction at
    /// a window boundary) and statistics.
    pub fn save_state(&self, w: &mut StateWriter) {
        for i in 0..32 {
            w.u32(self.regs.read(Reg::new(i)));
        }
        w.u32(self.pc);
        w.u64(self.time);
        w.bool(self.halted);
        match self.pending {
            None => w.u8(0),
            Some((DataOp::Load { rd, addr, width, signed }, pc)) => {
                w.u8(1);
                w.u8(rd.index());
                w.u32(addr);
                w.u8(width.bytes() as u8);
                w.bool(signed);
                w.u32(pc);
            }
            Some((DataOp::Store { addr, width, value }, pc)) => {
                w.u8(2);
                w.u32(addr);
                w.u8(width.bytes() as u8);
                w.u32(value);
                w.u32(pc);
            }
            Some((DataOp::Tas { rd, addr }, pc)) => {
                w.u8(3);
                w.u8(rd.index());
                w.u32(addr);
                w.u32(pc);
            }
        }
        self.stats.save_state(w);
    }

    /// Restores state saved by [`Cpu::save_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a corrupt stream (bad register index,
    /// width or pending-op discriminant).
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let mut regs = RegFile::new();
        for i in 0..32 {
            regs.write(Reg::new(i), r.u32()?);
        }
        self.regs = regs;
        self.pc = r.u32()?;
        self.time = r.u64()?;
        self.halted = r.bool()?;
        self.pending = match r.u8()? {
            0 => None,
            1 => {
                let rd = load_reg(r)?;
                let addr = r.u32()?;
                let width = load_width(r)?;
                let signed = r.bool()?;
                let pc = r.u32()?;
                Some((DataOp::Load { rd, addr, width, signed }, pc))
            }
            2 => {
                let addr = r.u32()?;
                let width = load_width(r)?;
                let value = r.u32()?;
                let pc = r.u32()?;
                Some((DataOp::Store { addr, width, value }, pc))
            }
            3 => {
                let rd = load_reg(r)?;
                let addr = r.u32()?;
                let pc = r.u32()?;
                Some((DataOp::Tas { rd, addr }, pc))
            }
            d => return Err(StateError::BadValue { what: "pending data-op kind", value: u64::from(d) }),
        };
        self.stats.load_state(r)?;
        Ok(())
    }
}

fn load_reg(r: &mut StateReader<'_>) -> Result<Reg, StateError> {
    let i = r.u8()?;
    Reg::try_new(i).ok_or(StateError::BadValue { what: "register index", value: u64::from(i) })
}

fn load_width(r: &mut StateReader<'_>) -> Result<Width, StateError> {
    match r.u8()? {
        1 => Ok(Width::Byte),
        2 => Ok(Width::Half),
        4 => Ok(Width::Word),
        b => Err(StateError::BadValue { what: "access width", value: u64::from(b) }),
    }
}

/// Branch/jump target: `pc + 4 + off * 4` with wrapping.
fn branch_target(pc: u32, off: i32) -> u32 {
    pc.wrapping_add(4).wrapping_add((off as u32).wrapping_mul(4))
}

/// Sign/zero extension of a loaded value.
fn extend(value: u32, width: Width, signed: bool) -> u32 {
    match (width, signed) {
        (Width::Byte, true) => value as u8 as i8 as i32 as u32,
        (Width::Half, true) => value as u16 as i16 as i32 as u32,
        _ => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::MemReply;
    use temu_isa::asm::assemble;
    use temu_mem::MemArray;

    /// Flat single-cycle test memory implementing the port.
    struct TestPort {
        mem: MemArray,
        fetch_extra: u64,
        data_extra: u64,
    }

    impl TestPort {
        fn new(size: u32) -> TestPort {
            TestPort { mem: MemArray::new(size), fetch_extra: 0, data_extra: 0 }
        }

        fn load_program(src: &str) -> (Cpu, TestPort) {
            let p = assemble(src).expect("test program assembles");
            let mut port = TestPort::new(64 * 1024);
            port.mem.load(p.base, &p.to_bytes()).unwrap();
            let mut cpu = Cpu::new(0, CpuConfig::default());
            cpu.reset(p.entry);
            (cpu, port)
        }
    }

    impl MemoryPort for TestPort {
        fn fetch(&mut self, _core: usize, pc: u32, now: u64) -> Result<MemReply, MemError> {
            let value = self.mem.read(pc, Width::Word)?;
            Ok(MemReply { value, done_at: now + 1 + self.fetch_extra, stall: self.fetch_extra })
        }

        fn read(&mut self, _core: usize, addr: u32, width: Width, now: u64) -> Result<MemReply, MemError> {
            let value = self.mem.read(addr, width)?;
            Ok(MemReply { value, done_at: now + 1 + self.data_extra, stall: self.data_extra })
        }

        fn write(&mut self, _core: usize, addr: u32, width: Width, value: u32, now: u64) -> Result<MemReply, MemError> {
            self.mem.write(addr, width, value)?;
            Ok(MemReply { value: 0, done_at: now + 1 + self.data_extra, stall: self.data_extra })
        }

        fn tas(&mut self, _core: usize, addr: u32, now: u64) -> Result<MemReply, MemError> {
            let value = self.mem.read(addr, Width::Word)?;
            self.mem.write(addr, Width::Word, 1)?;
            Ok(MemReply { value, done_at: now + 1 + self.data_extra, stall: self.data_extra })
        }
    }

    fn run(src: &str) -> (Cpu, TestPort) {
        let (mut cpu, mut port) = TestPort::load_program(src);
        for _ in 0..200_000 {
            match cpu.step(&mut port).expect("no faults") {
                StepOutcome::Halted => return (cpu, port),
                StepOutcome::Executed => {}
            }
        }
        panic!("program did not halt");
    }

    #[test]
    fn arithmetic_program() {
        let (cpu, _) = run("li r1, 6\n li r2, 7\n mul r3, r1, r2\n addi r3, r3, -2\n halt\n");
        assert_eq!(cpu.regs().read(Reg::new(3)), 40);
        assert_eq!(cpu.stats().muls, 1);
    }

    #[test]
    fn loads_and_stores_with_extension() {
        let (cpu, port) = run(
            "start: la r1, data\n
                    lw  r2, 0(r1)\n
                    lb  r3, 0(r1)\n
                    lbu r4, 0(r1)\n
                    lh  r5, 0(r1)\n
                    lhu r6, 0(r1)\n
                    sw  r2, 8(r1)\n
                    sb  r2, 12(r1)\n
                    halt\n
             data:  .word 0xFFFFFF80\n .word 0\n .word 0\n .word 0\n",
        );
        assert_eq!(cpu.regs().read(Reg::new(2)), 0xFFFF_FF80);
        assert_eq!(cpu.regs().read(Reg::new(3)), 0xFFFF_FF80, "lb sign-extends");
        assert_eq!(cpu.regs().read(Reg::new(4)), 0x80, "lbu zero-extends");
        assert_eq!(cpu.regs().read(Reg::new(5)), 0xFFFF_FF80, "lh sign-extends");
        assert_eq!(cpu.regs().read(Reg::new(6)), 0xFF80, "lhu zero-extends");
        let data = cpu.regs().read(Reg::new(1));
        assert_eq!(port.mem.read(data + 8, Width::Word).unwrap(), 0xFFFF_FF80);
        assert_eq!(port.mem.read(data + 12, Width::Word).unwrap(), 0x80, "sb writes one byte");
        assert_eq!(cpu.stats().loads, 5);
        assert_eq!(cpu.stats().stores, 2);
    }

    #[test]
    fn loop_counts() {
        let (cpu, _) = run("li r1, 10\n li r2, 0\nloop: addi r2, r2, 3\n addi r1, r1, -1\n bnez r1, loop\n halt\n");
        assert_eq!(cpu.regs().read(Reg::new(2)), 30);
        assert_eq!(cpu.stats().branches, 10);
        assert_eq!(cpu.stats().taken_branches, 9);
    }

    #[test]
    fn call_and_return() {
        let (cpu, _) = run(
            "start: li a0, 5\n call double\n mv s0, a0\n halt\n
             double: add a0, a0, a0\n ret\n",
        );
        assert_eq!(cpu.regs().read(Reg::new(20)), 10);
    }

    #[test]
    fn jalr_links_after_reading_base() {
        // jalr rd == rs1: the link value must not clobber the jump target.
        let (cpu, _) = run(
            "start: la r1, target\n jalr r1, r1, 0\n halt\n
             target: halt\n",
        );
        // After jalr, r1 = pc_of_jalr + 4 (address of the first halt).
        let jalr_pc = 2 * 4; // la expands to two instructions
        assert_eq!(cpu.regs().read(Reg::new(1)), jalr_pc as u32 + 4);
    }

    #[test]
    fn tas_returns_old_and_sets_one() {
        let (cpu, port) = run("la r1, lock\n tas r2, 0(r1)\n tas r3, 0(r1)\n halt\nlock: .word 0\n");
        assert_eq!(cpu.regs().read(Reg::new(2)), 0, "first TAS sees free lock");
        assert_eq!(cpu.regs().read(Reg::new(3)), 1, "second TAS sees taken lock");
        let lock = cpu.regs().read(Reg::new(1));
        assert_eq!(port.mem.read(lock, Width::Word).unwrap(), 1);
    }

    #[test]
    fn cycle_accounting_single_cycle_alu() {
        let (cpu, _) = run("nop\n nop\n nop\n halt\n");
        // 4 instructions, 1 cycle each (fetch subsumes issue).
        assert_eq!(cpu.time(), 4);
        assert_eq!(cpu.stats().active_cycles, 4);
        assert_eq!(cpu.stats().stall_cycles, 0);
        assert_eq!(cpu.stats().instructions, 4);
    }

    #[test]
    fn mem_instruction_takes_fetch_plus_access() {
        let (cpu, _) = run("lw r1, 0(r0)\n halt\n");
        // lw: fetch 1 + access 1; halt: fetch 1.
        assert_eq!(cpu.time(), 3);
        assert_eq!(cpu.stats().instructions, 2);
    }

    #[test]
    fn micro_phase_visible_between_fetch_and_data() {
        let (mut cpu, mut port) = TestPort::load_program("lw r1, 0(r0)\n halt\n");
        cpu.step(&mut port).unwrap();
        assert!(cpu.mid_instruction(), "load is parked after its fetch phase");
        assert_eq!(cpu.stats().instructions, 0, "not retired yet");
        cpu.step(&mut port).unwrap();
        assert!(!cpu.mid_instruction());
        assert_eq!(cpu.stats().instructions, 1);
    }

    #[test]
    fn taken_branch_pays_penalty() {
        let (cpu, _) = run("beq r0, r0, skip\n nop\nskip: halt\n");
        // fetch(1) + penalty(2) for branch, fetch(1) for halt = 4.
        assert_eq!(cpu.time(), 4);
        let (cpu2, _) = run("bne r0, r0, skip\n nop\nskip: halt\n");
        // untaken branch 1 + nop 1 + halt 1 = 3.
        assert_eq!(cpu2.time(), 3);
    }

    #[test]
    fn mul_div_latency() {
        let (cpu, _) = run("mul r1, r0, r0\n halt\n");
        assert_eq!(cpu.time(), 1 + 2 + 1, "fetch + mul_extra + halt");
        let (cpu2, _) = run("div r1, r0, r0\n halt\n");
        assert_eq!(cpu2.time(), 1 + 31 + 1);
        assert_eq!(cpu2.stats().divs, 1);
    }

    #[test]
    fn memory_stall_attribution() {
        let (mut cpu, mut port) = TestPort::load_program("lw r1, 0(r0)\n halt\n");
        port.data_extra = 7;
        loop {
            if cpu.step(&mut port).unwrap() == StepOutcome::Halted {
                break;
            }
        }
        assert_eq!(cpu.stats().stall_cycles, 7);
        assert_eq!(cpu.stats().active_cycles, cpu.time() - 7);
    }

    #[test]
    fn halted_core_stays_halted() {
        let (mut cpu, mut port) = TestPort::load_program("halt\n");
        assert_eq!(cpu.step(&mut port).unwrap(), StepOutcome::Halted);
        let t = cpu.time();
        assert_eq!(cpu.step(&mut port).unwrap(), StepOutcome::Halted);
        assert_eq!(cpu.time(), t, "no time passes for a halted core");
    }

    #[test]
    fn add_idle_advances_clock() {
        let mut cpu = Cpu::new(0, CpuConfig::default());
        cpu.add_idle(10);
        assert_eq!(cpu.time(), 10);
        assert_eq!(cpu.stats().idle_cycles, 10);
    }

    #[test]
    fn decode_fault_reports_pc() {
        let (mut cpu, mut port) = TestPort::load_program("nop\n .word 0xF8000000\n");
        cpu.step(&mut port).unwrap();
        match cpu.step(&mut port) {
            Err(CpuError::Decode { pc, word, .. }) => {
                assert_eq!(pc, 4);
                assert_eq!(word, 0xF800_0000);
            }
            other => panic!("expected decode fault, got {other:?}"),
        }
    }

    #[test]
    fn mem_fault_reports_pc() {
        // `li 0x20000` expands to lui+ori, so the faulting lw sits at pc 8.
        let (mut cpu, mut port) = TestPort::load_program("li r1, 0x20000\n lw r2, 0(r1)\n halt\n");
        cpu.step(&mut port).unwrap();
        cpu.step(&mut port).unwrap();
        cpu.step(&mut port).unwrap(); // fetch phase of lw
        let e = cpu.step(&mut port).unwrap_err(); // data phase faults
        assert!(matches!(e, CpuError::Mem { pc: 8, .. }));
        assert!(e.to_string().contains("memory fault"));
    }

    #[test]
    fn reset_clears_state() {
        let (mut cpu, _) = run("li r1, 3\n halt\n");
        cpu.reset(0);
        assert_eq!(cpu.pc(), 0);
        assert_eq!(cpu.time(), 0);
        assert!(!cpu.is_halted());
        assert_eq!(cpu.regs().read(Reg::new(1)), 0);
        assert_eq!(cpu.stats().instructions, 0);
    }

    #[test]
    fn slt_family_through_execution() {
        let (cpu, _) = run(
            "li r1, -5\n li r2, 3\n
             slt  r3, r1, r2\n
             sltu r4, r1, r2\n
             slti r5, r1, 0\n
             sltiu r6, r2, -1\n
             halt\n",
        );
        assert_eq!(cpu.regs().read(Reg::new(3)), 1, "-5 < 3 signed");
        assert_eq!(cpu.regs().read(Reg::new(4)), 0, "big unsigned not < 3");
        assert_eq!(cpu.regs().read(Reg::new(5)), 1);
        assert_eq!(cpu.regs().read(Reg::new(6)), 1, "3 < 0xFFFFFFFF unsigned");
    }

    #[test]
    fn shifts_through_execution() {
        let (cpu, _) = run(
            "li r1, 0x80000000\n li r2, 4\n
             srl r3, r1, r2\n sra r4, r1, r2\n sll r5, r2, r2\n
             srli r6, r1, 31\n srai r7, r1, 31\n slli r8, r2, 2\n
             halt\n",
        );
        assert_eq!(cpu.regs().read(Reg::new(3)), 0x0800_0000);
        assert_eq!(cpu.regs().read(Reg::new(4)), 0xF800_0000);
        assert_eq!(cpu.regs().read(Reg::new(5)), 64);
        assert_eq!(cpu.regs().read(Reg::new(6)), 1);
        assert_eq!(cpu.regs().read(Reg::new(7)), u32::MAX);
        assert_eq!(cpu.regs().read(Reg::new(8)), 16);
    }
}
