use std::collections::BTreeMap;

/// An assembled TE32 program image.
///
/// The image is a flat sequence of 32-bit words loaded at [`Program::base`]
/// (instructions and in-image data are not distinguished; the platform loads
/// the whole image into the target memory). `symbols` maps every label defined
/// in the source to its byte address, which tests and workload harnesses use
/// to locate data buffers.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program {
    /// Byte address the image is loaded at (word aligned).
    pub base: u32,
    /// Image contents, one little-endian 32-bit word per element.
    pub words: Vec<u32>,
    /// Label name → byte address.
    pub symbols: BTreeMap<String, u32>,
    /// Entry point (byte address). Defaults to `base`; the `start` label
    /// overrides it.
    pub entry: u32,
}

impl Program {
    /// Creates an empty program based at address 0.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a label's byte address.
    ///
    /// # Panics
    ///
    /// Panics if the label was never defined; use [`Program::symbols`]
    /// directly for a fallible lookup.
    pub fn symbol(&self, name: &str) -> u32 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol `{name}`"))
    }

    /// Size of the image in bytes.
    pub fn byte_len(&self) -> u32 {
        (self.words.len() as u32) * 4
    }

    /// Returns the image as little-endian bytes (the platform's load format).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.words.iter().flat_map(|w| w.to_le_bytes()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_len_and_bytes() {
        let p = Program { base: 0, words: vec![0x0403_0201, 0x0807_0605], symbols: BTreeMap::new(), entry: 0 };
        assert_eq!(p.byte_len(), 8);
        assert_eq!(p.to_bytes(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn symbol_lookup() {
        let mut p = Program::new();
        p.symbols.insert("loop".into(), 16);
        assert_eq!(p.symbol("loop"), 16);
    }

    #[test]
    #[should_panic(expected = "undefined symbol")]
    fn missing_symbol_panics() {
        Program::new().symbol("nope");
    }
}
