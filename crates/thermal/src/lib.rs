//! # temu-thermal — RC-network thermal model (paper §5)
//!
//! A C++-library-equivalent in Rust: the silicon die and its copper heat
//! spreader are divided into box-shaped cells of several sizes (finer cells
//! over the floorplan components flagged *hot*, §5.2 / Fig. 3a); every cell
//! carries four lateral thermal resistances, one vertical resistance and one
//! thermal capacitance (Fig. 3b). Silicon conductivity is **non-linear**,
//! `k(T) = 150 · (300/T)^{4/3} W/mK` (Table 2); the copper spreader is
//! linear. Heat enters as equivalent current sources on the bottom-surface
//! cells (power density × cell area); no heat leaves through the bottom or
//! the sides, and the top surface convects into the package through a
//! 20 K/W package-to-air resistance weighted by cell area — all exactly the
//! paper's §5.2 boundary conditions.
//!
//! Each cell interacts only with its neighbours, so one integration step is
//! linear in the number of cells; the explicit integrator picks a
//! stability-bounded internal substep automatically.
//!
//! # Solver architecture (perf notes)
//!
//! The hot path is organized for mesh sizes far beyond the paper's 660
//! cells:
//!
//! * **CSR adjacency** — the cell network is flattened into
//!   offsets/neighbour/edge arrays at meshing time (one contiguous pass per
//!   sweep, no per-cell heap indirection), with convection folded in as a
//!   branch-free per-cell conductance. The mesher itself builds lateral
//!   adjacency with a sorted boundary-line sweep, O(n log n + E), so 10k+
//!   tile floorplans mesh in milliseconds.
//! * **Colored (generalized red-black) sweeps** — cells are greedily
//!   colored so no color holds two adjacent cells; Gauss–Seidel then
//!   processes colors in order with every cell of a color updatable in
//!   parallel. Uniform grids get the classic 2 colors; multi-resolution
//!   T-junctions cost a few more.
//! * **Lazy coefficient refresh** — the non-linear silicon conductivity
//!   (`powf` per cell) and the derived conductances are refreshed when the
//!   temperature field has drifted enough to matter (5 mK for the implicit
//!   path, a fixed 16-substep cadence for the explicit one), not every
//!   substep.
//! * **Second-order warm start + SOR** — each implicit substep starts from
//!   the previous substeps' linearly-extrapolated change (`2δₙ − δₙ₋₁`),
//!   and the Gauss–Seidel path over-relaxes with an ω locked from the
//!   observed contraction ratio — together cutting iteration counts by an
//!   order of magnitude on smooth transients.
//! * **Geometric multigrid** ([`ImplicitSolve`]) — Gauss–Seidel contraction
//!   collapses with refinement (the 46k-cell bench rung used to exhaust its
//!   sweep budget *every substep* and silently accept the unconverged
//!   field). [`ImplicitSolve::Multigrid`] — chosen automatically above
//!   [`GridConfig::multigrid_threshold`] cells (default 12288) by the
//!   [`ImplicitSolve::Auto`] default — solves each backward-Euler substep
//!   by flexible CG preconditioned with an aggregation K-cycle: coarse RC
//!   networks built by conductance-guided pairwise matching (~8 cells per
//!   aggregate per level), symmetric Gauss–Seidel smoothing, a dense
//!   Cholesky solve at the ≤80-cell coarsest level, and an energy-norm
//!   line search re-scaling every coarse correction. Converges every
//!   substep in a handful of cycles regardless of mesh size, 100k+ cells
//!   included.
//! * **Convergence accounting** ([`SolverStats`]) — any implicit substep
//!   that exhausts its iteration budget unconverged is counted (and its
//!   residual recorded) instead of silently accepted;
//!   [`GridConfig::strict_convergence`] escalates it to
//!   [`ThermalError::NotConverged`] via [`ThermalModel::try_step`].
//! * **Threshold-based parallelism** — [`SweepMode::Auto`] (the default)
//!   runs serial below [`GridConfig::parallel_threshold`] cells and moves
//!   the sweeps (multigrid smoothing included) onto a persistent worker
//!   pool above it (pool width = available cores, overridable via
//!   `TEMU_THERMAL_THREADS`). Small meshes never pay fork-join overhead; a
//!   single-core host never pays dispatch overhead.
//! * **[`SweepMode::Reference`]** preserves the seed solver exactly and
//!   anchors the equivalence tests: every optimized mode — multigrid
//!   included — must track it within 1e-4 K over a 2 s transient
//!   (`tests/` + the bench crate's golden tests on the Fig. 4b floorplan).
//!
//! ```
//! use temu_thermal::{Floorplan, GridConfig, ThermalModel};
//!
//! let mut fp = Floorplan::new("die", 4000.0, 4000.0);
//! let cpu = fp.add_component("cpu", 500.0, 500.0, 1500.0, 1500.0, true);
//! let model_cfg = GridConfig::default();
//! let mut model = ThermalModel::new(&fp, &model_cfg).unwrap();
//! model.set_component_power(cpu, 1.5); // watts
//! model.step(0.010);                   // 10 ms sampling window
//! assert!(model.component_temp(cpu) > 300.0);
//! ```

mod csr;
mod error;
mod floorplan;
mod grid;
mod mg;
mod pool;
mod props;
mod reference;
mod solver;

pub use error::ThermalError;
pub use floorplan::{Component, ComponentId, Floorplan};
pub use grid::{GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalGrid};
pub use mg::MgTopology;
pub use pool::{default_workers, Pool as WorkerPool};
pub use props::{
    silicon_conductivity, ThermalProps, COPPER_CONDUCTIVITY, COPPER_SPECIFIC_HEAT_PER_UM3,
    COPPER_THICKNESS_UM, PACKAGE_TO_AIR_K_PER_W, SILICON_SPECIFIC_HEAT_PER_UM3, SILICON_THICKNESS_UM,
};
pub use reference::analytic_stack_temp;
pub use solver::{SolverStats, ThermalModel, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
