//! Workspace-level integration tests: full flows across crates through the
//! `temu` facade — platform + workloads + thermal + link + framework + DES.

use temu::des::DesMachine;
use temu::framework::{threaded::run_threaded, EmulationConfig, ThermalEmulation};
use temu::isa::Width;
use temu::platform::{DfsPolicy, Machine, PlatformConfig};
use temu::power::floorplans::{fig4a_arm7, fig4b_arm11};
use temu::workloads::dithering::{self, DitherConfig};
use temu::workloads::image::GreyImage;
use temu::workloads::matrix::{self, MatrixConfig};

/// The whole Fig. 5 flow on the Dithering workload: emulate, extract
/// statistics, heat the die, verify the output is still bit-exact.
#[test]
fn closed_loop_dithering_with_thermal_model() {
    let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
    let wl = DitherConfig { width: 64, height: 64, images: 2, cores: 4 };
    machine.load_program_all(&dithering::program(&wl).unwrap()).unwrap();
    let mut references = Vec::new();
    for i in 0..wl.images {
        let img = GreyImage::synthetic(64, 64, 500 + u64::from(i));
        let off = wl.image_addr(i) - temu::workloads::SHARED_BASE;
        machine.shared_mut().load(off, &img.pixels).unwrap();
        let mut r = img;
        dithering::reference_dither(&mut r, wl.cores);
        references.push(r);
    }

    let cfg = EmulationConfig { sampling_window_s: 0.002, ..EmulationConfig::default() };
    let mut emu = ThermalEmulation::new(machine, fig4b_arm11(), cfg).unwrap();
    let report = emu.run_to_halt(5_000).unwrap();
    assert!(report.all_halted, "dithering finished inside the window budget");
    assert!(report.windows >= 1);
    assert!(emu.model().max_temp() > 300.0, "the die heated");
    assert!(emu.link().stats().frames >= report.windows, "statistics shipped every window");

    for (i, reference) in references.iter().enumerate() {
        let off = wl.image_addr(i as u32) - temu::workloads::SHARED_BASE;
        assert_eq!(
            emu.machine().shared().slice(off, 64 * 64),
            &reference.pixels[..],
            "image {i} still bit-exact under the thermal loop"
        );
    }
}

/// DFS genuinely trades performance for temperature: the managed run is
/// cooler but needs more windows for the same work.
#[test]
fn dfs_trades_time_for_temperature() {
    let build = |policy| {
        let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
        let wl = MatrixConfig { n: 12, iters: 120, cores: 4 };
        machine.load_program_all(&matrix::program(&wl).unwrap()).unwrap();
        let cfg = EmulationConfig { sampling_window_s: 0.001, policy, ..EmulationConfig::default() };
        ThermalEmulation::new(machine, fig4b_arm11(), cfg).unwrap()
    };
    // A policy with thresholds low enough to trip on a short test run.
    let policy = DfsPolicy::new(300.8, 300.4, 500_000_000, 100_000_000).unwrap();

    let mut fast = build(None);
    let fast_report = fast.run_to_halt(100_000).unwrap();
    let mut managed = build(Some(policy));
    let managed_report = managed.run_to_halt(100_000).unwrap();

    assert!(fast_report.all_halted && managed_report.all_halted);
    assert!(managed.trace().throttled_fraction() > 0.0, "the policy engaged");
    assert!(
        managed_report.windows > fast_report.windows,
        "throttled run needs more windows ({} vs {})",
        managed_report.windows,
        fast_report.windows
    );
    let (managed_peak, fast_peak) =
        (managed.trace().peak_temp().unwrap(), fast.trace().peak_temp().unwrap());
    assert!(
        managed_peak <= fast_peak + 1e-9,
        "and never runs hotter ({managed_peak:.2} vs {fast_peak:.2})"
    );
}

/// The two floorplans of Fig. 4 behave as the paper describes: the ARM7
/// platform at 100 MHz stays nearly ambient, the ARM11 one at 500 MHz heats
/// visibly (that is why the thermal study uses ARM11).
#[test]
fn arm7_runs_cool_arm11_runs_hot() {
    let run = |arm11: bool| {
        let mut platform = PlatformConfig::paper_thermal(4);
        if !arm11 {
            platform.virtual_hz = 100_000_000;
        }
        let mut machine = Machine::new(platform).unwrap();
        let wl = MatrixConfig { n: 12, iters: 100_000, cores: 4 };
        machine.load_program_all(&matrix::program(&wl).unwrap()).unwrap();
        let map = if arm11 { fig4b_arm11() } else { fig4a_arm7() };
        let cfg = EmulationConfig { sampling_window_s: 0.004, ..EmulationConfig::default() };
        let mut emu = ThermalEmulation::new(machine, map, cfg).unwrap();
        let _ = emu.run_windows(25).unwrap();
        emu.trace().peak_temp().unwrap()
    };
    let arm7_peak = run(false);
    let arm11_peak = run(true);
    assert!(arm7_peak < 301.0, "ARM7 @ 100 MHz stays near ambient: {arm7_peak:.2} K");
    assert!(arm11_peak > arm7_peak + 2.0, "ARM11 @ 500 MHz heats: {arm11_peak:.2} K");
}

/// Cross-engine agreement through the facade: the fast engine and the
/// cycle-driven baseline agree on cycles and on memory contents.
#[test]
fn facade_cross_engine_agreement() {
    let platform = PlatformConfig::paper_noc(4);
    let wl = MatrixConfig { n: 8, iters: 2, cores: 4 };
    let program = matrix::program(&wl).unwrap();

    let mut fast = Machine::new(platform.clone()).unwrap();
    fast.load_program_all(&program).unwrap();
    let f = fast.run_to_halt(u64::MAX).unwrap();

    let mut des = DesMachine::new(platform).unwrap();
    des.load_program_all(&program).unwrap();
    let d = des.run_to_halt(u64::MAX).unwrap();

    assert_eq!(f.cycles, d.cycles);
    let off = matrix::layout().total_addr - temu::workloads::SHARED_BASE;
    assert_eq!(
        fast.shared().read(off, Width::Word).unwrap(),
        des.shared().read(off, Width::Word).unwrap()
    );
    assert_eq!(fast.shared().read(off, Width::Word).unwrap(), matrix::reference_total(&wl));
}

/// Threaded co-execution on a workload that halts: report and machine state
/// stay coherent across the thread boundary.
#[test]
fn threaded_transport_full_run() {
    let mut machine = Machine::new(PlatformConfig::paper_thermal(2)).unwrap();
    let wl = MatrixConfig { n: 10, iters: 30, cores: 2 };
    machine.load_program_all(&matrix::program(&wl).unwrap()).unwrap();
    let cfg = EmulationConfig { sampling_window_s: 0.001, ..EmulationConfig::default() };
    let (machine, trace) = run_threaded(machine, fig4b_arm11(), cfg, 10_000).unwrap();
    assert!(machine.all_halted());
    assert!(!trace.is_empty());
    let off = matrix::layout().total_addr - temu::workloads::SHARED_BASE;
    assert_eq!(machine.shared().read(off, Width::Word).unwrap(), matrix::reference_total(&wl));
}

/// Long-running thermal observation: virtual time accumulates correctly and
/// the modeled FPGA time exceeds virtual time by the 5x frequency ratio.
#[test]
fn vpcm_time_accounting_500mhz() {
    let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
    let wl = MatrixConfig { n: 12, iters: 100_000, cores: 4 };
    machine.load_program_all(&matrix::program(&wl).unwrap()).unwrap();
    let mut emu = ThermalEmulation::new(machine, fig4b_arm11(), EmulationConfig::default()).unwrap();
    let report = emu.run_windows(10).unwrap();
    assert!((report.virtual_seconds - 0.10).abs() < 1e-9, "10 windows x 10 ms");
    // 10 ms at 500 MHz virtual = 5 M cycles = 50 ms of 100 MHz FPGA time.
    assert!(
        (report.fpga_seconds - 0.50).abs() < 0.01,
        "FPGA time {:.3} s should be ~5x virtual time",
        report.fpga_seconds
    );
}
