//! Table 1 of the paper, verbatim: "Power for most important components of
//! an MPSoC design (130 nm bulk CMOS technology)".
//!
//! The NoC switch entry is not in Table 1 (the paper obtained NoC component
//! figures "after building a layout" with an industrial partner); the value
//! used here is a documented estimate in the same technology — see
//! EXPERIMENTS.md for the calibration note.

/// One component class in the power database.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerEntry {
    /// Component name as printed in Table 1.
    pub name: &'static str,
    /// Maximum power in watts at the entry's reference frequency.
    pub max_power_w: f64,
    /// Reference frequency for `max_power_w`, Hz.
    pub ref_hz: f64,
    /// Maximum power density, W/mm².
    pub density_w_mm2: f64,
}

impl PowerEntry {
    /// Component area implied by the Table 1 pair: `max power / density`.
    pub fn area_mm2(&self) -> f64 {
        self.max_power_w / self.density_w_mm2
    }

    /// Energy of one fully-active cycle at the reference clock, J.
    pub fn energy_per_cycle(&self) -> f64 {
        self.max_power_w / self.ref_hz
    }

    /// Maximum power at another clock frequency (dynamic power scales
    /// linearly with f; the paper's DFS changes only the frequency).
    pub fn max_power_at(&self, hz: f64) -> f64 {
        self.max_power_w * hz / self.ref_hz
    }
}

/// Which processor class the platform's RISC-32 cores stand in for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreKind {
    /// RISC 32 — ARM7 class (Table 1 row 1): 5.5 mW @ 100 MHz.
    Arm7,
    /// RISC 32 — ARM11 class (Table 1 row 2): 1.5 W max (at 500 MHz).
    Arm11,
}

/// The full power database.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerDb {
    /// RISC 32-ARM7: 5.5 mW @ 100 MHz, 0.03 W/mm².
    pub arm7: PowerEntry,
    /// RISC 32-ARM11: 1.5 W (max, reached at its 500 MHz design point),
    /// 0.5 W/mm².
    pub arm11: PowerEntry,
    /// DCache 8 kB/2-way: 43 mW @ 100 MHz, 0.012 W/mm².
    pub dcache_8k: PowerEntry,
    /// ICache 8 kB/DM: 11 mW @ 100 MHz, 0.03 W/mm².
    pub icache_8k: PowerEntry,
    /// Memory 32 kB: 15 mW @ 100 MHz, 0.02 W/mm².
    pub mem_32k: PowerEntry,
    /// NoC switch (documented estimate, not in Table 1).
    pub noc_switch: PowerEntry,
}

impl PowerDb {
    /// The paper's Table 1 values.
    pub fn table1() -> PowerDb {
        PowerDb {
            arm7: PowerEntry { name: "RISC 32-ARM7", max_power_w: 0.0055, ref_hz: 100e6, density_w_mm2: 0.03 },
            arm11: PowerEntry { name: "RISC 32-ARM11", max_power_w: 1.5, ref_hz: 500e6, density_w_mm2: 0.5 },
            dcache_8k: PowerEntry { name: "DCache 8kB/2way", max_power_w: 0.043, ref_hz: 100e6, density_w_mm2: 0.012 },
            icache_8k: PowerEntry { name: "ICache 8kB/DM", max_power_w: 0.011, ref_hz: 100e6, density_w_mm2: 0.03 },
            mem_32k: PowerEntry { name: "Memory 32kB", max_power_w: 0.015, ref_hz: 100e6, density_w_mm2: 0.02 },
            noc_switch: PowerEntry { name: "NoC switch 32b", max_power_w: 0.050, ref_hz: 100e6, density_w_mm2: 0.1 },
        }
    }

    /// The core entry for a [`CoreKind`].
    pub fn core(&self, kind: CoreKind) -> &PowerEntry {
        match kind {
            CoreKind::Arm7 => &self.arm7,
            CoreKind::Arm11 => &self.arm11,
        }
    }

    /// All entries, Table 1 order.
    pub fn entries(&self) -> [&PowerEntry; 6] {
        [&self.arm7, &self.arm11, &self.dcache_8k, &self.icache_8k, &self.mem_32k, &self.noc_switch]
    }
}

impl Default for PowerDb {
    fn default() -> PowerDb {
        PowerDb::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        let db = PowerDb::table1();
        assert_eq!(db.arm7.max_power_w, 0.0055);
        assert_eq!(db.arm7.density_w_mm2, 0.03);
        assert_eq!(db.arm11.max_power_w, 1.5);
        assert_eq!(db.arm11.density_w_mm2, 0.5);
        assert_eq!(db.dcache_8k.max_power_w, 0.043);
        assert_eq!(db.dcache_8k.density_w_mm2, 0.012);
        assert_eq!(db.icache_8k.max_power_w, 0.011);
        assert_eq!(db.icache_8k.density_w_mm2, 0.03);
        assert_eq!(db.mem_32k.max_power_w, 0.015);
        assert_eq!(db.mem_32k.density_w_mm2, 0.02);
    }

    #[test]
    fn implied_areas() {
        let db = PowerDb::table1();
        assert!((db.arm11.area_mm2() - 3.0).abs() < 1e-9);
        assert!((db.arm7.area_mm2() - 0.1833).abs() < 1e-3);
        assert!((db.mem_32k.area_mm2() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn frequency_scaling_is_linear() {
        let db = PowerDb::table1();
        assert!((db.arm11.max_power_at(100e6) - 0.3).abs() < 1e-12, "ARM11 at 100 MHz");
        assert!((db.icache_8k.max_power_at(500e6) - 0.055).abs() < 1e-12);
    }

    #[test]
    fn energy_per_cycle() {
        let db = PowerDb::table1();
        // 43 mW at 100 MHz = 0.43 nJ per fully-active cycle.
        assert!((db.dcache_8k.energy_per_cycle() - 0.43e-9).abs() < 1e-15);
    }

    #[test]
    fn core_selector() {
        let db = PowerDb::table1();
        assert_eq!(db.core(CoreKind::Arm7).name, "RISC 32-ARM7");
        assert_eq!(db.core(CoreKind::Arm11).name, "RISC 32-ARM11");
        assert_eq!(db.entries().len(), 6);
    }
}
