//! Offline stand-in for the `rand` crate: deterministic `StdRng` plus the
//! `Rng`/`SeedableRng` surface the workspace uses (`gen_range`, `gen_bool`).
//!
//! The generator is xoshiro256++ seeded through splitmix64 — not the real
//! `StdRng` stream, but every in-tree consumer only needs a deterministic,
//! well-mixed stream (same seed → same sequence, stable across runs).

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 random mantissa bits → uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Uniform sample from `self`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: i32 = a.gen_range(-100..100);
            assert_eq!(x, b.gen_range(-100..100));
            assert!((-100..100).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
