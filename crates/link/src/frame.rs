//! MAC frame encoding: destination, source, ethertype, payload, FCS.

use crate::crc::crc32;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

/// The ethertype of the framework's statistics protocol (an address from the
/// experimental/private range, standing in for the paper's "MAC packets in
/// our own format").
pub const TEMU_ETHERTYPE: u16 = 0x88B5;

/// Maximum payload of one frame (standard Ethernet MTU).
pub const MAX_PAYLOAD: usize = 1500;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The FPGA side of the link.
    pub const FPGA: MacAddr = MacAddr([0x02, 0x54, 0x45, 0x4D, 0x55, 0x01]);
    /// The host-PC side of the link.
    pub const HOST: MacAddr = MacAddr([0x02, 0x54, 0x45, 0x4D, 0x55, 0x02]);
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", b[0], b[1], b[2], b[3], b[4], b[5])
    }
}

/// Decode failure for a MAC frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// Fewer bytes than header + FCS.
    TooShort(usize),
    /// Payload exceeds the MTU.
    TooLong(usize),
    /// Frame check sequence mismatch.
    BadCrc {
        /// CRC carried by the frame.
        got: u32,
        /// CRC computed over the received bytes.
        want: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooShort(n) => write!(f, "frame of {n} bytes is shorter than header + FCS"),
            FrameError::TooLong(n) => write!(f, "payload of {n} bytes exceeds the {MAX_PAYLOAD}-byte MTU"),
            FrameError::BadCrc { got, want } => write!(f, "bad FCS {got:#010x}, computed {want:#010x}"),
        }
    }
}

impl Error for FrameError {}

/// One Ethernet frame of the statistics protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MacFrame {
    /// Destination address.
    pub dst: MacAddr,
    /// Source address.
    pub src: MacAddr,
    /// Ethertype ([`TEMU_ETHERTYPE`] for this protocol).
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

impl MacFrame {
    /// Builds a statistics-protocol frame from the FPGA to the host.
    pub fn to_host(payload: Bytes) -> MacFrame {
        MacFrame { dst: MacAddr::HOST, src: MacAddr::FPGA, ethertype: TEMU_ETHERTYPE, payload }
    }

    /// Builds a temperature-feedback frame from the host to the FPGA.
    pub fn to_fpga(payload: Bytes) -> MacFrame {
        MacFrame { dst: MacAddr::FPGA, src: MacAddr::HOST, ethertype: TEMU_ETHERTYPE, payload }
    }

    /// Serializes the frame (header, payload, CRC-32 FCS).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::TooLong`] if the payload exceeds the MTU.
    pub fn encode(&self) -> Result<Bytes, FrameError> {
        if self.payload.len() > MAX_PAYLOAD {
            return Err(FrameError::TooLong(self.payload.len()));
        }
        let mut buf = BytesMut::with_capacity(14 + self.payload.len() + 4);
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
        buf.put_slice(&self.payload);
        let fcs = crc32(&buf);
        buf.put_u32(fcs);
        Ok(buf.freeze())
    }

    /// Parses and validates a serialized frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError`] on truncation, oversize or FCS mismatch.
    pub fn decode(mut raw: Bytes) -> Result<MacFrame, FrameError> {
        if raw.len() < 18 {
            return Err(FrameError::TooShort(raw.len()));
        }
        if raw.len() > 18 + MAX_PAYLOAD {
            return Err(FrameError::TooLong(raw.len() - 18));
        }
        let body = raw.slice(..raw.len() - 4);
        let want = crc32(&body);
        let got = u32::from_be_bytes(raw[raw.len() - 4..].try_into().expect("4 bytes"));
        if got != want {
            return Err(FrameError::BadCrc { got, want });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        raw.copy_to_slice(&mut dst);
        raw.copy_to_slice(&mut src);
        let ethertype = raw.get_u16();
        let payload = raw.slice(..raw.len() - 4);
        Ok(MacFrame { dst: MacAddr(dst), src: MacAddr(src), ethertype, payload })
    }

    /// On-wire size including the 8-byte preamble, header, FCS and the
    /// 12-byte inter-frame gap (what the bandwidth model charges).
    pub fn wire_bytes(&self) -> usize {
        8 + 14 + self.payload.len().max(46) + 4 + 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_decode_round_trip() {
        let f = MacFrame::to_host(Bytes::from_static(b"hello thermal tool"));
        let wire = f.encode().unwrap();
        let g = MacFrame::decode(wire).unwrap();
        assert_eq!(f, g);
        assert_eq!(g.dst, MacAddr::HOST);
        assert_eq!(g.ethertype, TEMU_ETHERTYPE);
    }

    #[test]
    fn corrupted_frame_rejected() {
        let f = MacFrame::to_fpga(Bytes::from_static(b"temps"));
        let mut wire: Vec<u8> = f.encode().unwrap().to_vec();
        wire[15] ^= 0x40;
        assert!(matches!(MacFrame::decode(Bytes::from(wire)), Err(FrameError::BadCrc { .. })));
    }

    #[test]
    fn short_frame_rejected() {
        assert_eq!(MacFrame::decode(Bytes::from_static(b"tiny")), Err(FrameError::TooShort(4)));
    }

    #[test]
    fn oversize_payload_rejected() {
        let f = MacFrame::to_host(Bytes::from(vec![0u8; 1501]));
        assert_eq!(f.encode(), Err(FrameError::TooLong(1501)));
    }

    #[test]
    fn wire_bytes_include_overheads_and_min_size() {
        let f = MacFrame::to_host(Bytes::from_static(b"x"));
        // Minimum payload padding to 46 applies on the wire.
        assert_eq!(f.wire_bytes(), 8 + 14 + 46 + 4 + 12);
        let big = MacFrame::to_host(Bytes::from(vec![0u8; 1000]));
        assert_eq!(big.wire_bytes(), 8 + 14 + 1000 + 4 + 12);
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::FPGA.to_string(), "02:54:45:4d:55:01");
    }

    proptest! {
        #[test]
        fn round_trip_any_payload(payload in prop::collection::vec(any::<u8>(), 0..1500)) {
            let f = MacFrame::to_host(Bytes::from(payload));
            let wire = f.encode().unwrap();
            prop_assert_eq!(MacFrame::decode(wire).unwrap(), f);
        }

        #[test]
        fn decode_never_panics(raw in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = MacFrame::decode(Bytes::from(raw));
        }
    }
}
