//! The "uncore": per-core memory controllers, caches, memories, interconnect
//! and MMIO, implementing [`MemoryPort`] for the cores.
//!
//! This is the transaction-level twin of the paper's memory-controller RTL
//! (§3.2): it routes each access by address range, runs it through the L1
//! caches when the range is cacheable, services private-memory traffic
//! locally and shared-memory traffic over the interconnect, raises VPCM
//! freeze cycles when the physical backing device is slower than the emulated
//! latency target, and feeds the sniffers.
//!
//! Timing rules are the ones fixed in `DESIGN.md` §4; the signal-level
//! `temu-des` baseline implements the same rules cycle by cycle.

use crate::config::{IcChoice, PlatformConfig};
use crate::mmio::Mmio;
use crate::sniffer::{Event, EventBuffer, EventKind, SnifferMode};
use temu_cpu::{MemReply, MemoryPort};
use temu_interconnect::{Bus, Grant, IcStats, Interconnect, Noc, Request};
use temu_isa::Width;
use temu_mem::{
    AccessKind, AddressMap, Cache, CacheKind, CacheResponse, CacheStats, MemArray, MemError, MemStats, MemoryConfig,
    RangeTarget,
};
use temu_state::{StateError, StateReader, StateWriter};

/// Per-core memory-side state.
#[derive(Clone, Debug)]
struct CoreMem {
    icache: Option<Cache>,
    dcache: Option<Cache>,
    private: MemArray,
    priv_cfg: MemoryConfig,
    priv_stats: MemStats,
}

/// The interconnect instance.
#[derive(Clone, Debug)]
enum IcModel {
    Bus(Bus),
    Noc(Noc),
}

impl IcModel {
    fn transact(&mut self, req: &Request, mem_latency: u32) -> Grant {
        match self {
            IcModel::Bus(b) => b.transact(req, mem_latency),
            IcModel::Noc(n) => n.transact(req, mem_latency),
        }
    }

    fn stats(&mut self) -> IcStats {
        match self {
            IcModel::Bus(b) => b.take_stats(),
            IcModel::Noc(n) => n.take_stats(),
        }
    }

    fn peek_stats(&self) -> &IcStats {
        match self {
            IcModel::Bus(b) => b.stats(),
            IcModel::Noc(n) => n.stats(),
        }
    }
}

/// The shared memory system of one emulated MPSoC.
#[derive(Clone, Debug)]
pub struct Uncore {
    map: AddressMap,
    per_core: Vec<CoreMem>,
    shared: MemArray,
    shared_cfg: MemoryConfig,
    shared_stats: MemStats,
    ic: IcModel,
    /// MMIO window (console, sensors, sniffer control).
    pub mmio: Mmio,
    mode: SnifferMode,
    events: Option<EventBuffer>,
    freeze_mem: u64,
}

impl Uncore {
    /// Builds the memory system for a validated platform configuration.
    /// (Public so that alternative execution engines — the signal-level
    /// `temu-des` baseline — can drive the same memory system.)
    pub fn new(cfg: &PlatformConfig) -> Uncore {
        let map = AddressMap::paper_default(cfg.private_mem.size, cfg.shared_mem.size, cfg.shared_cacheable);
        let per_core = (0..cfg.cores)
            .map(|_| CoreMem {
                icache: cfg.icache.map(|c| Cache::new(c, CacheKind::Instruction)),
                dcache: cfg.dcache.map(|c| Cache::new(c, CacheKind::Data)),
                private: MemArray::new(cfg.private_mem.size),
                priv_cfg: cfg.private_mem,
                priv_stats: MemStats::default(),
            })
            .collect();
        let ic = match &cfg.interconnect {
            IcChoice::Bus(b) => IcModel::Bus(Bus::new(*b)),
            IcChoice::Noc(n) => IcModel::Noc(Noc::new(n.clone())),
        };
        let events = match cfg.sniffer_mode {
            SnifferMode::CountLogging => None,
            SnifferMode::EventLogging { capacity } => Some(EventBuffer::new(capacity)),
        };
        Uncore {
            map,
            per_core,
            shared: MemArray::new(cfg.shared_mem.size),
            shared_cfg: cfg.shared_mem,
            shared_stats: MemStats::default(),
            ic,
            mmio: Mmio::new(cfg.cores, (cfg.virtual_hz / 1_000_000) as u32),
            mode: cfg.sniffer_mode,
            events,
            freeze_mem: 0,
        }
    }

    /// Engine tie-break key for equal-time cores: the interconnect's
    /// arbitration order (bus policies) or the core index (NoC).
    pub fn tie_key(&self, core: usize) -> usize {
        match &self.ic {
            IcModel::Bus(b) => b.tie_break(core),
            IcModel::Noc(_) => core,
        }
    }

    /// Loads bytes into a core's private memory (program loader).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the image does not fit.
    pub fn load_private(&mut self, core: usize, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        self.per_core[core].private.load(addr, bytes)
    }

    /// Functional view of the shared memory.
    pub fn shared(&self) -> &MemArray {
        &self.shared
    }

    /// Mutable functional view of the shared memory (test fixtures, shared
    /// data initialization).
    pub fn shared_mut(&mut self) -> &mut MemArray {
        &mut self.shared
    }

    /// Functional view of a core's private memory.
    pub fn private(&self, core: usize) -> &MemArray {
        &self.per_core[core].private
    }

    /// The event buffer, when event-logging sniffers are configured.
    pub fn events(&self) -> Option<&EventBuffer> {
        self.events.as_ref()
    }

    /// Mutable event buffer (drained by the Ethernet dispatcher).
    pub fn events_mut(&mut self) -> Option<&mut EventBuffer> {
        self.events.as_mut()
    }

    /// Returns and clears accumulated memory-induced freeze cycles.
    pub(crate) fn take_freeze(&mut self) -> u64 {
        std::mem::take(&mut self.freeze_mem)
    }

    /// Interconnect counters without resetting them (signal taps).
    pub fn interconnect_stats(&self) -> &IcStats {
        self.ic.peek_stats()
    }

    /// A core's private-memory counters without resetting them.
    pub fn private_stats(&self, core: usize) -> &MemStats {
        &self.per_core[core].priv_stats
    }

    /// Shared-memory counters without resetting them.
    pub fn shared_stats(&self) -> &MemStats {
        &self.shared_stats
    }

    /// A core's cache counters without resetting them (I-cache, D-cache).
    pub fn cache_stats(&self, core: usize) -> (Option<&CacheStats>, Option<&CacheStats>) {
        let cm = &self.per_core[core];
        (cm.icache.as_ref().map(Cache::stats), cm.dcache.as_ref().map(Cache::stats))
    }

    pub(crate) fn collect_cache_stats(&mut self) -> (Vec<CacheStats>, Vec<CacheStats>) {
        let i = self.per_core.iter_mut().map(|c| c.icache.as_mut().map(|c| c.take_stats()).unwrap_or_default()).collect();
        let d = self.per_core.iter_mut().map(|c| c.dcache.as_mut().map(|c| c.take_stats()).unwrap_or_default()).collect();
        (i, d)
    }

    pub(crate) fn collect_mem_stats(&mut self) -> (Vec<MemStats>, MemStats) {
        let p = self.per_core.iter_mut().map(|c| std::mem::take(&mut c.priv_stats)).collect();
        (p, std::mem::take(&mut self.shared_stats))
    }

    pub(crate) fn collect_ic_stats(&mut self) -> IcStats {
        self.ic.stats()
    }

    fn log_event(&mut self, time: u64, core: usize, kind: EventKind, addr: u32) {
        if matches!(self.mode, SnifferMode::EventLogging { .. }) && self.mmio.sniffers_enabled() {
            if let Some(buf) = self.events.as_mut() {
                buf.push(Event { time, core: core as u8, kind, addr });
            }
        }
    }

    /// Functional read from the backing store of a mapped range.
    fn backing_read(&self, core: usize, target: RangeTarget, offset: u32, width: Width) -> Result<u32, MemError> {
        match target {
            RangeTarget::Private => self.per_core[core].private.read(offset, width),
            RangeTarget::Shared => self.shared.read(offset, width),
            RangeTarget::Mmio => unreachable!("MMIO handled by the caller"),
        }
    }

    fn backing_write(&mut self, core: usize, target: RangeTarget, offset: u32, width: Width, value: u32) -> Result<(), MemError> {
        match target {
            RangeTarget::Private => self.per_core[core].private.write(offset, width, value),
            RangeTarget::Shared => self.shared.write(offset, width, value),
            RangeTarget::Mmio => unreachable!("MMIO handled by the caller"),
        }
    }

    /// Timing of a private-memory burst: `latency + words` cycles, no
    /// arbitration (the device is local to the memory controller).
    fn private_service(&mut self, core: usize, words: u32, is_write: bool, issue: u64) -> u64 {
        let cm = &mut self.per_core[core];
        let done = issue + u64::from(cm.priv_cfg.latency) + u64::from(words);
        if is_write {
            cm.priv_stats.writes += 1;
        } else {
            cm.priv_stats.reads += 1;
        }
        cm.priv_stats.words += u64::from(words);
        let freeze = cm.priv_cfg.freeze_cycles();
        cm.priv_stats.freeze_cycles += freeze;
        self.freeze_mem += freeze;
        done
    }

    /// Timing of a shared-memory transaction over the interconnect.
    fn shared_service(&mut self, core: usize, addr: u32, words: u32, wb_words: u32, is_write: bool, issue: u64) -> u64 {
        let req = Request { initiator: core, target: 0, is_write, words, wb_words, addr, issue_cycle: issue };
        let grant = self.ic.transact(&req, self.shared_cfg.latency);
        if is_write {
            self.shared_stats.writes += 1;
        } else {
            self.shared_stats.reads += 1;
        }
        self.shared_stats.words += u64::from(words + wb_words);
        let freeze = self.shared_cfg.freeze_cycles();
        self.shared_stats.freeze_cycles += freeze;
        self.freeze_mem += freeze;
        self.log_event(issue, core, EventKind::IcTxn, addr);
        grant.complete
    }

    /// Burst service to whichever device owns `addr`.
    #[allow(clippy::too_many_arguments)] // one flat dispatch for the memory-port hot path
    fn service(&mut self, core: usize, target: RangeTarget, addr: u32, words: u32, wb_words: u32, is_write: bool, issue: u64) -> u64 {
        match target {
            RangeTarget::Private => self.private_service(core, words + wb_words, is_write, issue),
            RangeTarget::Shared => self.shared_service(core, addr, words, wb_words, is_write, issue),
            RangeTarget::Mmio => issue + 1,
        }
    }

    /// Cache-mediated access path shared by fetches and data accesses.
    ///
    /// Returns `(done_at, stall)` where the first `hit_latency` cycles count
    /// as active.
    fn cached_access(
        &mut self,
        core: usize,
        is_icache: bool,
        target: RangeTarget,
        addr: u32,
        kind: AccessKind,
        now: u64,
    ) -> (u64, u64) {
        let cm = &mut self.per_core[core];
        let cache = if is_icache { cm.icache.as_mut() } else { cm.dcache.as_mut() }.expect("caller checked presence");
        let hit_lat = u64::from(cache.config().hit_latency);
        let line_words = cache.config().line_words();
        let response = cache.access(addr, kind);
        let line_base = cache.line_base(addr);
        match response {
            CacheResponse::Hit => (now + hit_lat, 0),
            CacheResponse::Miss { writeback_addr } => {
                let miss_kind = if is_icache { EventKind::MissI } else { EventKind::MissD };
                self.log_event(now, core, miss_kind, addr);
                let issue = now + hit_lat;
                let done = match writeback_addr {
                    None => self.service(core, target, line_base, line_words, 0, false, issue),
                    Some(wb) => {
                        // The victim may live in a different range than the fill.
                        let wb_target = self.map.lookup(wb).map(|r| r.target).unwrap_or(target);
                        if wb_target == target {
                            // Combined eviction+fill burst on one device.
                            self.service(core, target, line_base, line_words, line_words, false, issue)
                        } else {
                            // Write back locally/remotely first, then fill.
                            let t1 = self.service(core, wb_target, wb, line_words, 0, true, issue);
                            self.service(core, target, line_base, line_words, 0, false, t1)
                        }
                    }
                };
                (done, done - now - hit_lat)
            }
            CacheResponse::WriteThrough { .. } => {
                let issue = now + hit_lat;
                let done = self.service(core, target, addr, 1, 0, true, issue);
                (done, done - now - hit_lat)
            }
        }
    }

    /// Serializes all mutable memory-system state: caches, memory images,
    /// device statistics, interconnect occupancy, MMIO registers, the event
    /// buffer and pending freeze cycles. The address map and configurations
    /// are rebuild-derived and not recorded.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.per_core.len());
        for cm in &self.per_core {
            w.bool(cm.icache.is_some());
            if let Some(c) = &cm.icache {
                c.save_state(w);
            }
            w.bool(cm.dcache.is_some());
            if let Some(c) = &cm.dcache {
                c.save_state(w);
            }
            cm.private.save_state(w);
            cm.priv_stats.save_state(w);
        }
        self.shared.save_state(w);
        self.shared_stats.save_state(w);
        match &self.ic {
            IcModel::Bus(b) => {
                w.u8(0);
                b.save_state(w);
            }
            IcModel::Noc(n) => {
                w.u8(1);
                n.save_state(w);
            }
        }
        self.mmio.save_state(w);
        w.bool(self.events.is_some());
        if let Some(e) = &self.events {
            e.save_state(w);
        }
        w.u64(self.freeze_mem);
    }

    /// Restores state saved by [`Uncore::save_state`] into a memory system
    /// freshly built from the *same* platform configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the recorded shape (core count, cache
    /// presence, memory sizes, interconnect kind) disagrees with this
    /// instance — the checkpoint belongs to a different platform — or if the
    /// stream is corrupt.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let ncores = r.usize()?;
        if ncores != self.per_core.len() {
            return Err(StateError::BadLength { found: ncores as u64, max: self.per_core.len() as u64 });
        }
        for cm in &mut self.per_core {
            for (cache, what) in [(&mut cm.icache, "icache presence"), (&mut cm.dcache, "dcache presence")] {
                let present = r.bool()?;
                match (present, cache.as_mut()) {
                    (true, Some(c)) => c.load_state(r)?,
                    (false, None) => {}
                    _ => return Err(StateError::BadValue { what, value: u64::from(present) }),
                }
            }
            cm.private.load_state(r)?;
            cm.priv_stats.load_state(r)?;
        }
        self.shared.load_state(r)?;
        self.shared_stats.load_state(r)?;
        let ic_kind = r.u8()?;
        match (ic_kind, &mut self.ic) {
            (0, IcModel::Bus(b)) => b.load_state(r)?,
            (1, IcModel::Noc(n)) => n.load_state(r)?,
            _ => return Err(StateError::BadValue { what: "interconnect kind", value: u64::from(ic_kind) }),
        }
        self.mmio.load_state(r)?;
        let has_events = r.bool()?;
        match (has_events, self.events.as_mut()) {
            (true, Some(e)) => e.load_state(r)?,
            (false, None) => {}
            _ => return Err(StateError::BadValue { what: "event buffer presence", value: u64::from(has_events) }),
        }
        self.freeze_mem = r.u64()?;
        Ok(())
    }
}

impl MemoryPort for Uncore {
    fn fetch(&mut self, core: usize, pc: u32, now: u64) -> Result<MemReply, MemError> {
        let range = *self.map.lookup(pc).ok_or(MemError::Unmapped { addr: pc })?;
        if range.target == RangeTarget::Mmio {
            return Err(MemError::Unmapped { addr: pc });
        }
        let value = self.backing_read(core, range.target, range.offset(pc), Width::Word)?;
        let (done_at, stall) = if range.cacheable && self.per_core[core].icache.is_some() {
            self.cached_access(core, true, range.target, pc, AccessKind::Fetch, now)
        } else {
            let done = self.service(core, range.target, pc, 1, 0, false, now);
            (done, done - now - 1)
        };
        Ok(MemReply { value, done_at, stall })
    }

    fn read(&mut self, core: usize, addr: u32, width: Width, now: u64) -> Result<MemReply, MemError> {
        let range = *self.map.lookup(addr).ok_or(MemError::Unmapped { addr })?;
        if range.target == RangeTarget::Mmio {
            if !addr.is_multiple_of(width.bytes()) {
                return Err(MemError::Misaligned { addr, width });
            }
            let value = self.mmio.read(core, range.offset(addr), now);
            return Ok(MemReply { value, done_at: now + 1, stall: 0 });
        }
        let value = self.backing_read(core, range.target, range.offset(addr), width)?;
        self.log_event(now, core, EventKind::Read, addr);
        let (done_at, stall) = if range.cacheable && self.per_core[core].dcache.is_some() {
            self.cached_access(core, false, range.target, addr, AccessKind::Read, now)
        } else {
            let done = self.service(core, range.target, addr, 1, 0, false, now);
            (done, done - now - 1)
        };
        Ok(MemReply { value, done_at, stall })
    }

    fn write(&mut self, core: usize, addr: u32, width: Width, value: u32, now: u64) -> Result<MemReply, MemError> {
        let range = *self.map.lookup(addr).ok_or(MemError::Unmapped { addr })?;
        if range.target == RangeTarget::Mmio {
            if !addr.is_multiple_of(width.bytes()) {
                return Err(MemError::Misaligned { addr, width });
            }
            self.mmio.write(core, range.offset(addr), value);
            return Ok(MemReply { value: 0, done_at: now + 1, stall: 0 });
        }
        self.backing_write(core, range.target, range.offset(addr), width, value)?;
        self.log_event(now, core, EventKind::Write, addr);
        let (done_at, stall) = if range.cacheable && self.per_core[core].dcache.is_some() {
            self.cached_access(core, false, range.target, addr, AccessKind::Write, now)
        } else {
            let done = self.service(core, range.target, addr, 1, 0, true, now);
            (done, done - now - 1)
        };
        Ok(MemReply { value: 0, done_at, stall })
    }

    fn tas(&mut self, core: usize, addr: u32, now: u64) -> Result<MemReply, MemError> {
        let range = *self.map.lookup(addr).ok_or(MemError::Unmapped { addr })?;
        if range.target == RangeTarget::Mmio {
            return Err(MemError::Unmapped { addr });
        }
        // TAS bypasses the caches: it is a single atomic read-modify-write
        // transaction at the memory (the paper's spinlocks live in shared,
        // non-cached memory).
        let offset = range.offset(addr);
        let value = self.backing_read(core, range.target, offset, Width::Word)?;
        self.backing_write(core, range.target, offset, Width::Word, 1)?;
        self.log_event(now, core, EventKind::Write, addr);
        let done_at = self.service(core, range.target, addr, 1, 0, true, now);
        Ok(MemReply { value, done_at, stall: done_at - now - 1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_mem::{MMIO_BASE as MMIO_BASE_ADDR, SHARED_BASE as SHARED_BASE_ADDR};

    fn uncore(cores: usize) -> Uncore {
        Uncore::new(&PlatformConfig::paper_bus(cores))
    }

    #[test]
    fn fetch_hits_after_miss() {
        let mut u = uncore(1);
        let a = u.fetch(0, 0x100, 0).unwrap();
        assert!(a.stall > 0, "cold miss fills the line");
        let b = u.fetch(0, 0x104, a.done_at).unwrap();
        assert_eq!(b.stall, 0, "same line hits");
        assert_eq!(b.done_at, a.done_at + 1);
    }

    #[test]
    fn private_fill_timing_is_local() {
        let mut u = uncore(1);
        // Miss on private: hit_lat(1) + latency(2) + 4 words = 7 cycles.
        let a = u.fetch(0, 0x100, 0).unwrap();
        assert_eq!(a.done_at, 7);
        assert_eq!(a.stall, 6);
    }

    #[test]
    fn shared_word_read_goes_over_the_bus() {
        let mut u = uncore(1);
        u.shared_mut().write(0x40, Width::Word, 77).unwrap();
        let r = u.read(0, SHARED_BASE_ADDR + 0x40, Width::Word, 0).unwrap();
        assert_eq!(r.value, 77);
        // arb(1) + addr(1) + latency(6) + 1 word = 9.
        assert_eq!(r.done_at, 9);
        assert_eq!(u.collect_ic_stats().transactions, 1);
    }

    #[test]
    fn mmio_reads_core_id_in_one_cycle() {
        let mut u = uncore(4);
        let r = u.read(3, MMIO_BASE_ADDR, Width::Word, 10).unwrap();
        assert_eq!(r.value, 3);
        assert_eq!(r.done_at, 11);
        assert_eq!(r.stall, 0);
    }

    #[test]
    fn mmio_fetch_and_tas_rejected() {
        let mut u = uncore(1);
        assert!(matches!(u.fetch(0, MMIO_BASE_ADDR, 0), Err(MemError::Unmapped { .. })));
        assert!(matches!(u.tas(0, MMIO_BASE_ADDR, 0), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn unmapped_hole_rejected() {
        let mut u = uncore(1);
        assert!(matches!(u.read(0, 0x0800_0000, Width::Word, 0), Err(MemError::Unmapped { .. })));
    }

    #[test]
    fn tas_is_atomic_at_the_memory() {
        let mut u = uncore(2);
        let lock = SHARED_BASE_ADDR + 0x10;
        let a = u.tas(0, lock, 0).unwrap();
        assert_eq!(a.value, 0);
        let b = u.tas(1, lock, 0).unwrap();
        assert_eq!(b.value, 1, "second core sees the lock taken");
        assert!(b.done_at > a.done_at, "transactions serialized on the bus");
    }

    #[test]
    fn private_memories_are_disjoint() {
        let mut u = uncore(2);
        u.write(0, 0x200, Width::Word, 111, 0).unwrap();
        u.write(1, 0x200, Width::Word, 222, 0).unwrap();
        assert_eq!(u.read(0, 0x200, Width::Word, 50).unwrap().value, 111);
        assert_eq!(u.read(1, 0x200, Width::Word, 50).unwrap().value, 222);
    }

    #[test]
    fn dirty_writeback_extends_the_fill() {
        let mut u = uncore(1);
        // Write to line A (allocates, dirty), then read a conflicting line B:
        // the miss must carry the victim back.
        let a = 0x0000; // set 0
        let b = 0x1000; // 4KB direct-mapped: same set
        u.write(0, a, Width::Word, 5, 0).unwrap();
        let first_done = u.read(0, a, Width::Word, 20).unwrap().done_at; // hit
        assert_eq!(first_done, 21);
        let miss = u.read(0, b, Width::Word, 30).unwrap();
        // hit_lat(1) + combined burst on private memory: latency(2) + 8 words = 10 → done 41.
        assert_eq!(miss.done_at, 41);
        let (_, d) = u.collect_cache_stats();
        assert_eq!(d[0].writebacks, 1);
    }

    #[test]
    fn write_through_posts_every_store() {
        let mut cfg = PlatformConfig::paper_bus(1);
        if let Some(c) = &mut cfg.dcache {
            c.write_policy = temu_mem::WritePolicy::WriteThrough;
        }
        let mut u = Uncore::new(&cfg);
        u.write(0, 0x100, Width::Word, 1, 0).unwrap();
        u.write(0, 0x100, Width::Word, 2, 50).unwrap();
        let (_, d) = u.collect_cache_stats();
        assert_eq!(d[0].write_throughs, 2);
        assert_eq!(d[0].writebacks, 0);
    }

    #[test]
    fn freeze_cycles_accumulate_for_ddr_backing() {
        let mut cfg = PlatformConfig::paper_bus(1);
        cfg.shared_mem = MemoryConfig::ddr(1024 * 1024, 6, 18);
        let mut u = Uncore::new(&cfg);
        u.read(0, SHARED_BASE_ADDR, Width::Word, 0).unwrap();
        u.read(0, SHARED_BASE_ADDR + 4, Width::Word, 100).unwrap();
        assert_eq!(u.take_freeze(), 24, "12 excess physical cycles per access");
        assert_eq!(u.take_freeze(), 0);
    }

    #[test]
    fn event_logging_records_and_overflows() {
        let mut cfg = PlatformConfig::paper_bus(1);
        cfg.sniffer_mode = SnifferMode::EventLogging { capacity: 2 };
        let mut u = Uncore::new(&cfg);
        for i in 0..4 {
            u.read(0, SHARED_BASE_ADDR + 4 * i, Width::Word, u64::from(i) * 100).unwrap();
        }
        let buf = u.events().expect("event mode has a buffer");
        assert_eq!(buf.len(), 2);
        assert!(buf.overflowed() > 0);
    }

    #[test]
    fn sniffer_disable_stops_event_logging() {
        let mut cfg = PlatformConfig::paper_bus(1);
        cfg.sniffer_mode = SnifferMode::EventLogging { capacity: 64 };
        let mut u = Uncore::new(&cfg);
        u.mmio.write(0, crate::mmio::MMIO_SNIFFER_CTRL, 0);
        u.read(0, SHARED_BASE_ADDR, Width::Word, 0).unwrap();
        assert_eq!(u.events().unwrap().len(), 0);
    }

    #[test]
    fn count_mode_has_no_buffer() {
        let u = uncore(1);
        assert!(u.events().is_none());
    }
}
