//! The client half of the protocol: connect, submit, stream progress,
//! fetch results — the library under the `temu-client` bin and the
//! end-to-end tests.

use crate::protocol::Request;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use temu_framework::{JsonValue, SweepSpec};

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// The server sent a frame the client could not interpret.
    Protocol(String),
    /// The server answered `{"ok": false, ...}`; the payload is its
    /// error message.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The terminal summary of a watched job (the protocol's `done` event).
#[derive(Clone, PartialEq, Debug)]
pub struct DoneSummary {
    /// Whether the job finished with every point succeeding.
    pub ok: bool,
    /// Grid points in the job.
    pub points: u64,
    /// Points that executed a scenario.
    pub executed: u64,
    /// Points served from the shared cache.
    pub cache_hits: u64,
    /// Points that failed.
    pub failed: u64,
    /// Server-side wall seconds.
    pub wall_s: f64,
    /// The job-level error, when it failed before running.
    pub error: Option<String>,
    /// Whether the job was cancelled while queued.
    pub cancelled: bool,
}

impl DoneSummary {
    fn from_event(v: &JsonValue) -> Result<DoneSummary, ClientError> {
        let int = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(DoneSummary {
            ok: v
                .get("ok")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| ClientError::Protocol(format!("done event without ok: {v}")))?,
            points: int("points"),
            executed: int("executed"),
            cache_hits: int("cache_hits"),
            failed: int("failed"),
            wall_s: v.get("wall_s").and_then(JsonValue::as_f64).unwrap_or(0.0),
            error: v.get("error").and_then(JsonValue::as_str).map(String::from),
            cancelled: v.get("cancelled").and_then(JsonValue::as_bool).unwrap_or(false),
        })
    }
}

/// The acknowledgement plus (when watching) terminal summary of one
/// submission.
#[derive(Clone, PartialEq, Debug)]
pub struct Submission {
    /// The server's job id.
    pub job: u64,
    /// Grid points the job expands to.
    pub total: u64,
    /// The terminal summary (`None` for fire-and-forget submissions).
    pub done: Option<DoneSummary>,
}

/// One protocol connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame; `Err(Protocol)` on EOF or non-JSON bytes.
    fn recv(&mut self) -> Result<JsonValue, ClientError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Protocol(String::from("server closed the connection")));
        }
        JsonValue::parse(line.trim()).map_err(ClientError::Protocol)
    }

    /// Reads one response frame, mapping `{"ok": false}` to
    /// [`ClientError::Server`].
    fn recv_ok(&mut self) -> Result<JsonValue, ClientError> {
        let v = self.recv()?;
        match v.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error").and_then(JsonValue::as_str).unwrap_or("unspecified error").to_string(),
            )),
            None => Err(ClientError::Protocol(format!("response without ok field: {v}"))),
        }
    }

    fn request(&mut self, request: &Request) -> Result<JsonValue, ClientError> {
        self.send(request)?;
        self.recv_ok()
    }

    /// Submits a sweep. With `watch`, streams events to `on_event` until
    /// the job's `done` event, which is summarized in the returned
    /// [`Submission`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a refused spec or full queue; protocol
    /// and I/O failures.
    pub fn submit(
        &mut self,
        spec: &SweepSpec,
        watch: bool,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<Submission, ClientError> {
        let ack = self.request(&Request::Submit { spec: Box::new(spec.clone()), watch })?;
        let job = ack
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("submit ack without job id: {ack}")))?;
        let total = ack.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
        if !watch {
            return Ok(Submission { job, total, done: None });
        }
        loop {
            let event = self.recv()?;
            on_event(&event);
            if event.get("event").and_then(JsonValue::as_str) == Some("done") {
                return Ok(Submission { job, total, done: Some(DoneSummary::from_event(&event)?) });
            }
        }
    }

    /// Fetches a job's state and progress counters.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job.
    pub fn status(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Status { job })
    }

    /// Fetches a finished job's result frame; the `"report"` field holds
    /// the full `SweepReport` JSON.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is unknown or unfinished.
    pub fn result(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Result { job })
    }

    /// Cancels a queued job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is unknown or already
    /// running/finished.
    pub fn cancel(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Cancel { job })
    }

    /// Attaches to a job's event stream until it finishes, returning its
    /// terminal summary.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job.
    pub fn watch(&mut self, job: u64, mut on_event: impl FnMut(&JsonValue)) -> Result<DoneSummary, ClientError> {
        self.request(&Request::Watch { job })?;
        loop {
            let event = self.recv()?;
            on_event(&event);
            if event.get("event").and_then(JsonValue::as_str) == Some("done") {
                return DoneSummary::from_event(&event);
            }
        }
    }

    /// Fetches the server counters.
    ///
    /// # Errors
    ///
    /// Protocol and I/O failures.
    pub fn stats(&mut self) -> Result<JsonValue, ClientError> {
        self.request(&Request::Stats)
    }

    /// Asks the server to stop.
    ///
    /// # Errors
    ///
    /// Protocol and I/O failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}
