//! Fluent experiment construction: one [`Scenario`] = one runnable
//! co-emulation.
//!
//! A scenario composes everything an experiment needs — platform
//! (cores/caches/interconnect), workload (with parameters and input
//! images), power model, thermal grid/solver configuration, DFS policy,
//! floorplan, run budget and an optional FPGA-fit gate — and builds it into
//! a ready-to-run [`ThermalEmulation`]. Named presets reproduce the paper's
//! experiments in one line; builder methods tweak any knob from there:
//!
//! ```
//! use temu_framework::{Scenario, TemuError};
//!
//! # fn main() -> Result<(), TemuError> {
//! let run = Scenario::exploration_bus(2)
//!     .sampling_window_s(0.002)
//!     .run()?;
//! assert!(run.report.all_halted);
//! # Ok(())
//! # }
//! ```

use crate::artifacts::ArtifactCache;
use crate::emulation::{EmulationConfig, EmulationReport, EmulationState, ThermalEmulation};
use crate::error::TemuError;
use crate::sweep::{fnv1a64, fnv1a64_fold};
use crate::trace::ThermalTrace;
use temu_fpga::{estimate, CostModel, Device, V2VP30};
use temu_isa::Program;
use temu_link::EthernetConfig;
use temu_mem::CacheConfig;
use temu_platform::{DfsPolicy, IcChoice, Machine, PlatformConfig};
use temu_power::floorplans::quad_core;
use temu_power::{CoreKind, FloorplanMap, PowerModel};
use temu_thermal::{GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalGrid, ThermalModel};
use temu_workloads::dithering::{self, DitherConfig};
use temu_workloads::image::GreyImage;
use temu_workloads::matrix::{self, MatrixConfig};
use temu_workloads::{WorkloadError, SHARED_BASE};

/// The SW driver a scenario runs, with its parameters and input data.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum Workload {
    /// The MATRIX / MATRIX-TM kernel (§7).
    Matrix(MatrixConfig),
    /// The DITHERING filter (§7) over synthetic grey images derived from
    /// `seed`.
    Dithering {
        /// Geometry and distribution of the filter.
        cfg: DitherConfig,
        /// Seed of the deterministic synthetic input images.
        seed: u64,
    },
}

impl Workload {
    /// Cores the workload is parameterized for.
    pub fn cores(&self) -> u32 {
        match self {
            Workload::Matrix(c) => c.cores,
            Workload::Dithering { cfg, .. } => cfg.cores,
        }
    }

    /// Generates the TE32 program.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for a degenerate configuration.
    pub fn program(&self) -> Result<Program, WorkloadError> {
        match self {
            Workload::Matrix(c) => matrix::program(c),
            Workload::Dithering { cfg, .. } => dithering::program(cfg),
        }
    }

    /// A short human-readable label ("matrix-16x16x1000", "dither-64x64x2").
    pub fn label(&self) -> String {
        match self {
            Workload::Matrix(c) => format!("matrix-{}x{}x{}", c.n, c.n, c.iters),
            Workload::Dithering { cfg, .. } => {
                format!("dither-{}x{}x{}", cfg.width, cfg.height, cfg.images)
            }
        }
    }

    /// Loads the workload's input data into the machine's shared memory.
    fn load_inputs(&self, machine: &mut Machine) -> Result<(), TemuError> {
        if let Workload::Dithering { cfg, seed } = self {
            for i in 0..cfg.images {
                let img = GreyImage::synthetic(cfg.width as usize, cfg.height as usize, seed + u64::from(i));
                let off = cfg.image_addr(i) - SHARED_BASE;
                machine.shared_mut().load(off, &img.pixels)?;
            }
        }
        Ok(())
    }
}

/// How long a scenario runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunBudget {
    /// Run until every core halts, or at most this many sampling windows.
    ToHalt {
        /// The window cap.
        max_windows: u64,
    },
    /// Run exactly this many sampling windows, halted or not (long thermal
    /// observations over repeating workloads).
    Windows(u64),
}

/// One fully-described co-emulation experiment (see the module docs).
///
/// The builder is by-value: every method consumes and returns the scenario,
/// so configurations chain fluently and clone cheaply into sweeps.
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    named: bool,
    platform: PlatformConfig,
    floorplan: Option<FloorplanMap>,
    workload: Workload,
    emu: EmulationConfig,
    budget: RunBudget,
    fit_device: Option<Device>,
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario::new()
    }
}

impl Scenario {
    /// The default experiment: the §7 thermal platform (4 cores, 8 KB
    /// caches, 4-switch NoC at 500 MHz virtual) running a moderate MATRIX
    /// workload to halt.
    pub fn new() -> Scenario {
        Scenario {
            name: String::new(),
            named: false,
            platform: PlatformConfig::paper_thermal(4),
            floorplan: None,
            workload: Workload::Matrix(MatrixConfig::thermal(4, 1_000)),
            emu: EmulationConfig::default(),
            budget: RunBudget::ToHalt { max_windows: 10_000 },
            fit_device: None,
        }
    }

    // ---- presets -------------------------------------------------------

    /// The Fig. 6 headline experiment: MATRIX-TM on the 4×ARM11 floorplan
    /// at 500 MHz with the paper's dual-threshold DFS policy. Observed for
    /// 3 virtual seconds — the die crosses the 350 K threshold near 2.6 s
    /// (the package heats with a ~4.6 s time constant), so the policy's
    /// saw-tooth is visible by the end of the window budget.
    pub fn paper_fig6() -> Scenario {
        Scenario::paper_fig6_unmanaged().policy(DfsPolicy::paper()).name("paper-fig6-dfs")
    }

    /// The Fig. 6 baseline: same stress workload without thermal
    /// management (500 MHz throughout).
    pub fn paper_fig6_unmanaged() -> Scenario {
        Scenario::new()
            .workload(Workload::Matrix(MatrixConfig::thermal(4, 20_000)))
            .windows(300)
            .name("paper-fig6-unmanaged")
    }

    /// A MATRIX-TM thermal-stress variant with a chosen iteration count,
    /// run to halt.
    pub fn thermal_stress(iters: u32) -> Scenario {
        Scenario::new()
            .workload(Workload::Matrix(MatrixConfig::thermal(4, iters)))
            .name(format!("thermal-stress-{iters}"))
    }

    /// A §7 exploration point: `cores` processors with 4 KB L1s behind the
    /// OPB bus, running the DITHERING workload to halt.
    pub fn exploration_bus(cores: usize) -> Scenario {
        Scenario::new()
            .platform(PlatformConfig::paper_bus(cores))
            .workload(Workload::Dithering {
                cfg: DitherConfig { width: 64, height: 64, images: 2, cores: cores as u32 },
                seed: 7,
            })
    }

    /// The same exploration point on the paper's two-switch NoC.
    pub fn exploration_noc(cores: usize) -> Scenario {
        Scenario::exploration_bus(cores).platform(PlatformConfig::paper_noc(cores))
    }

    // ---- builder knobs -------------------------------------------------

    /// Names the scenario (campaign reports key on this; defaults to a
    /// label derived from the configuration).
    pub fn name(mut self, name: impl Into<String>) -> Scenario {
        self.name = name.into();
        self.named = true;
        self
    }

    /// Replaces the whole platform configuration.
    pub fn platform(mut self, platform: PlatformConfig) -> Scenario {
        self.platform = platform;
        self
    }

    /// Resizes the experiment to `cores` processors: platform core count,
    /// interconnect attachment ports and the workload's distribution are
    /// all retargeted together.
    pub fn cores(mut self, cores: usize) -> Scenario {
        self.platform.cores = cores;
        match &mut self.platform.interconnect {
            IcChoice::Bus(b) => b.initiators = cores,
            IcChoice::Noc(n) => {
                let switches = n.topology.switches().max(1);
                n.core_switch = (0..cores).map(|c| c % switches).collect();
            }
        }
        match &mut self.workload {
            Workload::Matrix(c) => c.cores = cores as u32,
            Workload::Dithering { cfg, .. } => cfg.cores = cores as u32,
        }
        self
    }

    /// Sets both L1 caches to the same geometry.
    pub fn caches(mut self, cache: CacheConfig) -> Scenario {
        self.platform.icache = Some(cache);
        self.platform.dcache = Some(cache);
        self
    }

    /// Replaces the workload.
    pub fn workload(mut self, workload: Workload) -> Scenario {
        self.workload = workload;
        self
    }

    /// Enables run-time thermal management with the given DFS policy.
    pub fn policy(mut self, policy: DfsPolicy) -> Scenario {
        self.emu.policy = Some(policy);
        self
    }

    /// Disables run-time thermal management (the default).
    pub fn no_policy(mut self) -> Scenario {
        self.emu.policy = None;
        self
    }

    /// Sets the statistics sampling window (virtual seconds; the paper
    /// uses 10 ms).
    pub fn sampling_window_s(mut self, window_s: f64) -> Scenario {
        self.emu.sampling_window_s = window_s;
        self
    }

    /// Replaces the thermal meshing/solver configuration.
    pub fn grid(mut self, grid: GridConfig) -> Scenario {
        self.emu.grid = grid;
        self
    }

    /// Selects the solver's sweep execution strategy.
    pub fn sweep(mut self, sweep: SweepMode) -> Scenario {
        self.emu.grid.sweep = sweep;
        self
    }

    /// Selects the semi-implicit linear-system strategy (plain
    /// Gauss–Seidel, geometric multigrid, or the cell-count-resolved
    /// [`ImplicitSolve::Auto`] default).
    pub fn implicit_solve(mut self, solve: ImplicitSolve) -> Scenario {
        self.emu.grid.implicit_solve = solve;
        self
    }

    /// Demands strict solver convergence: a thermal substep that exhausts
    /// its iteration budget fails the run with a typed
    /// [`TemuError::Thermal`] instead of silently proceeding on an
    /// unconverged temperature field. Off by default — but even then every
    /// such substep is counted in
    /// [`EmulationReport::solver`](crate::EmulationReport).
    pub fn strict_convergence(mut self, strict: bool) -> Scenario {
        self.emu.grid.strict_convergence = strict;
        self
    }

    /// Replaces the activity-to-power conversion model.
    pub fn power(mut self, power: PowerModel) -> Scenario {
        self.emu.power = power;
        self
    }

    /// Replaces the statistics-link parameters.
    pub fn link(mut self, link: EthernetConfig) -> Scenario {
        self.emu.link = link;
        self
    }

    /// Uses an explicit floorplan instead of the Fig. 4 layout derived
    /// from the platform.
    pub fn floorplan(mut self, map: FloorplanMap) -> Scenario {
        self.floorplan = Some(map);
        self
    }

    /// Runs exactly `n` sampling windows.
    pub fn windows(mut self, n: u64) -> Scenario {
        self.budget = RunBudget::Windows(n);
        self
    }

    /// Runs until every core halts, capped at `max_windows` windows.
    pub fn to_halt(mut self, max_windows: u64) -> Scenario {
        self.budget = RunBudget::ToHalt { max_windows };
        self
    }

    /// Gates the build on the FPGA cost model: building fails with
    /// [`TemuError::DoesNotFit`] if the platform exceeds `device` (the
    /// paper's pre-synthesis check, §6).
    pub fn check_fit(mut self, device: Device) -> Scenario {
        self.fit_device = Some(device);
        self
    }

    /// Gates the build on the paper's Virtex-2 Pro VP30.
    pub fn check_fit_v2vp30(self) -> Scenario {
        self.check_fit(V2VP30)
    }

    // ---- accessors and execution ---------------------------------------

    /// The scenario's name (explicit, or derived from the configuration).
    pub fn label(&self) -> String {
        if self.named {
            return self.name.clone();
        }
        let ic = match &self.platform.interconnect {
            IcChoice::Bus(_) => "bus",
            IcChoice::Noc(_) => "noc",
        };
        format!("{}core-{}-{}", self.platform.cores, ic, self.workload.label())
    }

    /// The platform configuration.
    pub fn platform_config(&self) -> &PlatformConfig {
        &self.platform
    }

    /// A stable content key of everything that determines the run's
    /// outcome — platform, floorplan, workload, emulation configuration
    /// (grid, solver, power, link, DFS policy), run budget and fit gate —
    /// deliberately excluding the display name. Two scenarios with equal
    /// keys produce identical runs, which is what lets
    /// [`crate::ResultCache`] skip re-executing repeated sweep points.
    #[must_use]
    pub fn content_key(&self) -> u64 {
        crate::sweep::fnv1a64(self.fingerprint_source().as_bytes())
    }

    /// The canonical configuration description behind
    /// [`Scenario::content_key`] (a deterministic `Debug` rendering of
    /// every outcome-relevant field). Concatenation of the four
    /// [`Scenario::layered_keys`] segments, in order — the layered
    /// decomposition and the one-shot key hash the same bytes.
    pub(crate) fn fingerprint_source(&self) -> String {
        format!(
            "{}{}{}{}",
            self.fingerprint_floorplan_segment(),
            self.fingerprint_mesh_segment(),
            self.fingerprint_operator_segment(),
            self.fingerprint_platform_segment()
        )
    }

    // The four fingerprint segments. Their concatenation must stay
    // byte-identical to the historical one-shot
    // `"platform={:?};floorplan={:?};workload={:?};emu={:?};budget={:?};fit={:?}"`
    // rendering — on-disk result-cache keys depend on it.
    fn fingerprint_floorplan_segment(&self) -> String {
        format!("platform={:?};floorplan={:?};", self.platform, self.floorplan)
    }

    fn fingerprint_mesh_segment(&self) -> String {
        format!("workload={:?};emu={:?};", self.workload, self.emu)
    }

    fn fingerprint_operator_segment(&self) -> String {
        format!("budget={:?};", self.budget)
    }

    fn fingerprint_platform_segment(&self) -> String {
        format!("fit={:?}", self.fit_device)
    }

    /// The scenario content key decomposed into chained per-segment FNV-1a
    /// prefix states: `floorplan_key` hashes the platform + floorplan
    /// segment, and each later key folds one more segment onto the
    /// previous state, so [`LayeredKeys::platform_key`] is **exactly**
    /// [`Scenario::content_key`]. Two scenarios sharing a prefix of equal
    /// segments share the corresponding key prefix — which is what lets
    /// sweeps and servers reason about partial configuration overlap
    /// without a second key scheme drifting from the frozen one.
    #[must_use]
    pub fn layered_keys(&self) -> LayeredKeys {
        let floorplan_key = fnv1a64(self.fingerprint_floorplan_segment().as_bytes());
        let mesh_key = fnv1a64_fold(floorplan_key, self.fingerprint_mesh_segment().as_bytes());
        let operator_key = fnv1a64_fold(mesh_key, self.fingerprint_operator_segment().as_bytes());
        let platform_key = fnv1a64_fold(operator_key, self.fingerprint_platform_segment().as_bytes());
        LayeredKeys { floorplan_key, mesh_key, operator_key, platform_key }
    }

    /// The semantic cache sub-keys of the scenario's build artifacts —
    /// deliberately *narrower* than [`Scenario::layered_keys`] (which are
    /// prefix states of the full fingerprint and therefore over-capture):
    /// the mesh key covers only the platform, floorplan and
    /// mesh-geometry knobs ([`GridConfig::mesh_fingerprint`]), so two
    /// points differing in workload, budget or solver strategy still share
    /// one meshed grid in an [`ArtifactCache`].
    pub(crate) fn artifact_keys(&self) -> ArtifactKeys {
        let floorplan = fnv1a64(self.fingerprint_floorplan_segment().as_bytes());
        let mesh = fnv1a64_fold(floorplan, self.emu.grid.mesh_fingerprint().as_bytes());
        let operator = fnv1a64_fold(mesh, self.emu.grid.operator_fingerprint().as_bytes());
        let program = fnv1a64(format!("workload={:?};", self.workload).as_bytes());
        ArtifactKeys { floorplan, mesh, operator, program }
    }

    /// Points with equal group keys can run in one lockstep batch: they
    /// share the meshed grid (same mesh artifact key → same `Arc` out of
    /// the sweep's [`ArtifactCache`]), the same full solver configuration
    /// and the same sampling window, which is everything
    /// `ThermalModel::try_step_batch` needs to fuse their substeps.
    pub(crate) fn lockstep_group_key(&self) -> u64 {
        let keys = self.artifact_keys();
        fnv1a64_fold(
            keys.mesh,
            format!("grid={:?};window={:?};", self.emu.grid, self.emu.sampling_window_s).as_bytes(),
        )
    }

    /// The run budget.
    pub(crate) fn budget(&self) -> RunBudget {
        self.budget
    }

    /// The workload.
    pub fn workload_config(&self) -> &Workload {
        &self.workload
    }

    /// Assembles the scenario into a ready-to-run [`ThermalEmulation`]:
    /// validates the platform, optionally checks the FPGA fit, generates
    /// and loads the program and its input data, and wires the machine to
    /// the floorplan and thermal model.
    ///
    /// # Errors
    ///
    /// Any [`TemuError`]: configuration, fit, workload generation, or
    /// floorplan mismatch.
    pub fn build(&self) -> Result<ThermalEmulation, TemuError> {
        self.build_with(None)
    }

    /// [`Scenario::build`] with an optional layered [`ArtifactCache`]: the
    /// resolved floorplan, the meshed thermal grid, the multigrid
    /// hierarchy topology and the generated program are each looked up
    /// under their [`Scenario::artifact_keys`] sub-key and built only on
    /// miss, so sibling sweep points that share geometry share one mesh
    /// (behind an `Arc`) instead of re-meshing per point.
    ///
    /// # Errors
    ///
    /// The same errors as [`Scenario::build`]; failed artifact builds are
    /// never cached.
    pub fn build_with(&self, artifacts: Option<&ArtifactCache>) -> Result<ThermalEmulation, TemuError> {
        let mut emu = temu_obs::time!("core.point_build_ns", self.build_inner(artifacts))?;
        // Bind the emulation to this configuration so its checkpoints can
        // only ever resume under the same scenario.
        emu.set_scenario_key(self.content_key());
        Ok(emu)
    }

    fn build_inner(&self, artifacts: Option<&ArtifactCache>) -> Result<ThermalEmulation, TemuError> {
        self.platform.validate()?;
        if let Some(device) = self.fit_device {
            let report = estimate(&self.platform, &CostModel::default(), device, 1);
            if !report.fits() {
                return Err(TemuError::DoesNotFit(Box::new(report)));
            }
        }
        if self.workload.cores() as usize != self.platform.cores {
            return Err(WorkloadError::CoreMismatch {
                workload_cores: self.workload.cores(),
                platform_cores: self.platform.cores,
            }
            .into());
        }
        let Some(cache) = artifacts else {
            let program = self.workload.program()?;
            let mut machine = Machine::new(self.platform.clone())?;
            machine.load_program_all(&program)?;
            self.workload.load_inputs(&mut machine)?;
            return ThermalEmulation::new(machine, self.resolved_floorplan()?, self.emu.clone());
        };
        let keys = self.artifact_keys();
        let program = cache.program(keys.program, || self.workload.program().map_err(TemuError::from))?;
        let mut machine = Machine::new(self.platform.clone())?;
        machine.load_program_all(&program)?;
        self.workload.load_inputs(&mut machine)?;
        let map = cache.floorplan(keys.floorplan, || self.resolved_floorplan())?;
        map.check_cores(machine.num_cores())?;
        let grid = cache
            .mesh(keys.mesh, || ThermalGrid::build(&map.floorplan, &self.emu.grid).map_err(TemuError::from))?;
        let topo = if wants_multigrid(&self.emu.grid, grid.n_cells()) {
            Some(cache.operator(keys.operator, &grid, &self.emu.grid)?)
        } else {
            None
        };
        let model = ThermalModel::with_artifacts(grid, topo, &self.emu.grid)?;
        ThermalEmulation::with_model(machine, (*map).clone(), model, self.emu.clone())
    }

    /// Builds and runs the scenario to its budget.
    ///
    /// # Errors
    ///
    /// Any [`TemuError`] from [`Scenario::build`] or a platform fault
    /// during emulation.
    pub fn run(&self) -> Result<ScenarioRun, TemuError> {
        self.run_with(None)
    }

    /// [`Scenario::run`] building through an optional [`ArtifactCache`]
    /// (see [`Scenario::build_with`]). The run itself is byte-identical to
    /// an uncached run — artifacts only change *how often* the build
    /// stages execute, never what they produce.
    ///
    /// # Errors
    ///
    /// Any [`TemuError`] from [`Scenario::build_with`] or a platform fault
    /// during emulation.
    pub fn run_with(&self, artifacts: Option<&ArtifactCache>) -> Result<ScenarioRun, TemuError> {
        let mut emu = self.build_with(artifacts)?;
        let report = temu_obs::time!("core.point_run_ns", {
            match self.budget {
                RunBudget::ToHalt { max_windows } => emu.run_to_halt(max_windows)?,
                RunBudget::Windows(n) => emu.run_windows(n)?,
            }
        });
        Ok(ScenarioRun { name: self.label(), report, trace: emu.into_trace() })
    }

    /// Rebuilds the emulation and installs a window-granular checkpoint
    /// taken by [`ThermalEmulation::checkpoint`] under this same scenario,
    /// so the run continues from that window bitwise-identically. The
    /// returned emulation is mid-run: finish it with
    /// [`Scenario::resume_run`] (or [`Scenario::resume_run_with`]) to get
    /// a report covering the *whole* logical run — calling `run_windows` /
    /// `run_to_halt` directly would re-base the per-call report onto the
    /// resume point instead.
    ///
    /// # Errors
    ///
    /// [`TemuError::CheckpointMismatch`] when the state was checkpointed
    /// under a different scenario configuration
    /// ([`Scenario::content_key`] differs); [`TemuError::State`] when the
    /// embedded platform or thermal streams are corrupt; any build error.
    pub fn resume_from(&self, state: &EmulationState) -> Result<ThermalEmulation, TemuError> {
        self.resume_from_with(state, None)
    }

    /// [`Scenario::resume_from`] building through an optional
    /// [`ArtifactCache`] (see [`Scenario::build_with`]).
    ///
    /// # Errors
    ///
    /// The same errors as [`Scenario::resume_from`].
    pub fn resume_from_with(
        &self,
        state: &EmulationState,
        artifacts: Option<&ArtifactCache>,
    ) -> Result<ThermalEmulation, TemuError> {
        let expected = self.content_key();
        if state.scenario_key() != expected {
            return Err(TemuError::CheckpointMismatch { expected, found: state.scenario_key() });
        }
        let mut emu = self.build_with(artifacts)?;
        emu.restore_state(state)?;
        Ok(emu)
    }

    /// Resumes from a checkpoint and runs the rest of the scenario's
    /// budget. The result is bitwise-identical to an uninterrupted
    /// [`Scenario::run`] — same report counters, same trace — except for
    /// host wall-clock time.
    ///
    /// # Errors
    ///
    /// Any error of [`Scenario::resume_from`], plus platform faults and
    /// (strict mode) thermal non-convergence while running.
    pub fn resume_run(&self, state: &EmulationState) -> Result<ScenarioRun, TemuError> {
        self.run_observed(None, Some(state), None)
    }

    /// [`Scenario::resume_run`] building through an optional
    /// [`ArtifactCache`].
    ///
    /// # Errors
    ///
    /// The same errors as [`Scenario::resume_run`].
    pub fn resume_run_with(
        &self,
        state: &EmulationState,
        artifacts: Option<&ArtifactCache>,
    ) -> Result<ScenarioRun, TemuError> {
        self.run_observed(artifacts, Some(state), None)
    }

    /// The execution spine shared by fresh runs, resumed runs and the
    /// sweep's within-point window checkpoints: builds (or resumes) the
    /// emulation and runs it to the scenario budget, invoking `observer`
    /// every `observer.0` windows at a checkpointable boundary.
    pub(crate) fn run_observed(
        &self,
        artifacts: Option<&ArtifactCache>,
        resume: Option<&EmulationState>,
        observer: crate::emulation::WindowObserver<'_>,
    ) -> Result<ScenarioRun, TemuError> {
        let (mut emu, resumed) = match resume {
            Some(state) => (self.resume_from_with(state, artifacts)?, true),
            None => (self.build_with(artifacts)?, false),
        };
        let report = emu.run_budget_observed(self.budget, resumed, observer)?;
        Ok(ScenarioRun { name: self.label(), report, trace: emu.into_trace() })
    }

    /// The explicit floorplan when one was set, the derived Fig. 4 layout
    /// otherwise.
    fn resolved_floorplan(&self) -> Result<FloorplanMap, TemuError> {
        match &self.floorplan {
            Some(map) => Ok(map.clone()),
            None => self.derived_floorplan(),
        }
    }

    /// The Fig. 4 floorplan matching the platform (ARM11 components; NoC
    /// switch tiles when the platform uses a NoC).
    fn derived_floorplan(&self) -> Result<FloorplanMap, TemuError> {
        let cores = self.platform.cores;
        if !(1..=4).contains(&cores) {
            // The Fig. 4 family holds at most four core tiles; larger dies
            // need an explicit floorplan.
            return Err(temu_power::PowerError::CoreTileMismatch { core_tiles: 4, cores }.into());
        }
        let switches = match &self.platform.interconnect {
            IcChoice::Bus(_) => 0,
            IcChoice::Noc(n) => n.topology.switches(),
        };
        Ok(quad_core(CoreKind::Arm11, cores, switches))
    }
}

/// Whether a scenario built from `cfg` over a mesh of `n_cells` cells
/// will run multigrid substeps — the same resolution
/// `ThermalModel::uses_multigrid` performs, applied at build time so
/// [`Scenario::build_with`] only constructs (and caches) the hierarchy
/// topology for models that will actually use it.
fn wants_multigrid(cfg: &GridConfig, n_cells: usize) -> bool {
    if cfg.sweep == SweepMode::Reference || !matches!(cfg.integrator, Integrator::SemiImplicit { .. }) {
        return false;
    }
    match cfg.implicit_solve {
        ImplicitSolve::GaussSeidel => false,
        ImplicitSolve::Multigrid => true,
        _ => n_cells >= cfg.multigrid_threshold,
    }
}

/// The scenario content key as four chained FNV-1a prefix states (see
/// [`Scenario::layered_keys`]): each key extends the previous one by one
/// fingerprint segment, and the last equals [`Scenario::content_key`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub struct LayeredKeys {
    /// Prefix state over the platform + floorplan segment.
    pub floorplan_key: u64,
    /// `floorplan_key` folded with the workload + emulation segment.
    pub mesh_key: u64,
    /// `mesh_key` folded with the run-budget segment.
    pub operator_key: u64,
    /// `operator_key` folded with the fit-gate segment — byte-for-byte
    /// the frozen [`Scenario::content_key`].
    pub platform_key: u64,
}

/// The semantic sub-keys of a scenario's cacheable build artifacts (see
/// [`Scenario::artifact_keys`]); each addresses one [`ArtifactCache`]
/// layer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ArtifactKeys {
    /// Resolved floorplan map: platform + floorplan configuration.
    pub floorplan: u64,
    /// Meshed thermal grid: `floorplan` + the mesh-geometry knobs.
    pub mesh: u64,
    /// Multigrid hierarchy topology: `mesh` + the operator knobs.
    pub operator: u64,
    /// Generated TE32 program: the workload alone.
    pub program: u64,
}

/// The outcome of one scenario: the run summary plus the full temperature
/// trace.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The scenario's name.
    pub name: String,
    /// The run summary (windows, cycles, FPGA/virtual time, aggregate
    /// statistics, link statistics).
    pub report: EmulationReport,
    /// The recorded temperature trace.
    pub trace: ThermalTrace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_builds() {
        let emu = Scenario::new().build().unwrap();
        assert_eq!(emu.machine().num_cores(), 4);
    }

    #[test]
    fn preset_labels_are_stable() {
        assert_eq!(Scenario::paper_fig6().label(), "paper-fig6-dfs");
        assert_eq!(Scenario::exploration_bus(2).label(), "2core-bus-dither-64x64x2");
        assert_eq!(Scenario::exploration_noc(4).label(), "4core-noc-dither-64x64x2");
    }

    #[test]
    fn cores_retargets_platform_interconnect_and_workload() {
        let s = Scenario::exploration_bus(4).cores(2);
        assert_eq!(s.platform_config().cores, 2);
        assert_eq!(s.workload_config().cores(), 2);
        assert!(s.platform_config().validate().is_ok());
        let s = Scenario::new().cores(2); // NoC attachment lists follow too
        assert!(s.platform_config().validate().is_ok());
    }

    #[test]
    fn workload_platform_core_mismatch_is_typed() {
        let s = Scenario::new().workload(Workload::Matrix(MatrixConfig::small(2)));
        let e = s.build().unwrap_err();
        assert!(
            matches!(
                e,
                TemuError::Workload(WorkloadError::CoreMismatch { workload_cores: 2, platform_cores: 4 })
            ),
            "{e:?}"
        );
    }

    #[test]
    fn fit_gate_rejects_oversized_designs() {
        // A tiny device cannot host the 4-core NoC platform.
        let nano = Device { slices: 100, bram18: 2, ppc405: 1 };
        let e = Scenario::new().check_fit(nano).build().unwrap_err();
        assert!(matches!(e, TemuError::DoesNotFit(_)), "{e:?}");
        // The paper's device fits its own exploration platform.
        assert!(Scenario::exploration_bus(2).check_fit_v2vp30().build().is_ok());
    }

    #[test]
    fn scenario_runs_to_halt_and_heats() {
        let run = Scenario::exploration_bus(2).sampling_window_s(0.002).run().unwrap();
        assert!(run.report.all_halted);
        assert!(run.trace.peak_temp().unwrap() > 300.0);
    }

    #[test]
    fn layered_keys_compose_to_the_content_key() {
        for s in [
            Scenario::new(),
            Scenario::paper_fig6(),
            Scenario::exploration_noc(3).check_fit_v2vp30(),
            Scenario::thermal_stress(500).windows(7),
        ] {
            let keys = s.layered_keys();
            assert_eq!(keys.platform_key, s.content_key(), "final prefix state IS the frozen key");
            // Each prefix state genuinely extends the previous one.
            let distinct = [keys.floorplan_key, keys.mesh_key, keys.operator_key, keys.platform_key];
            let mut dedup = distinct.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 4, "all four prefix states differ: {distinct:?}");
        }
    }

    #[test]
    fn layered_key_prefixes_track_configuration_overlap() {
        let a = Scenario::exploration_bus(2);
        let b = Scenario::exploration_bus(2).windows(9); // same platform/workload, later budget
        let c = Scenario::exploration_bus(3); // different platform from the first segment on
        assert_eq!(a.layered_keys().mesh_key, b.layered_keys().mesh_key);
        assert_ne!(a.layered_keys().operator_key, b.layered_keys().operator_key);
        assert_ne!(a.layered_keys().floorplan_key, c.layered_keys().floorplan_key);
    }

    #[test]
    fn artifact_keys_ignore_per_run_solver_knobs() {
        let base = Scenario::exploration_bus(2);
        let strict = Scenario::exploration_bus(2).strict_convergence(true);
        let solver = Scenario::exploration_bus(2).implicit_solve(ImplicitSolve::Multigrid);
        let workload = Scenario::exploration_bus(2).windows(3);
        assert_eq!(base.artifact_keys().mesh, strict.artifact_keys().mesh);
        assert_eq!(base.artifact_keys().mesh, solver.artifact_keys().mesh);
        assert_eq!(base.artifact_keys().mesh, workload.artifact_keys().mesh);
        // But content keys all differ — artifact keys are deliberately
        // coarser than result keys.
        assert_ne!(base.content_key(), strict.content_key());
        // Mesh-geometry knobs do land in the mesh key.
        let fine = GridConfig { hot_div: 5, ..GridConfig::default() };
        assert_ne!(base.artifact_keys().mesh, base.clone().grid(fine).artifact_keys().mesh);
    }

    #[test]
    fn cached_build_shares_one_mesh_across_siblings() {
        let cache = ArtifactCache::new();
        let a = Scenario::exploration_bus(2).build_with(Some(&cache)).unwrap();
        let b = Scenario::exploration_bus(2).windows(5).build_with(Some(&cache)).unwrap();
        assert!(
            std::sync::Arc::ptr_eq(&a.model().grid_arc(), &b.model().grid_arc()),
            "sibling points share one meshed grid instance"
        );
        let stats = cache.stats();
        assert_eq!((stats.mesh_misses, stats.mesh_hits), (1, 1));
        assert_eq!((stats.floorplan_misses, stats.floorplan_hits), (1, 1));
        assert_eq!((stats.program_misses, stats.program_hits), (1, 1));
        assert_eq!(stats.operator_misses, 0, "paper-scale Gauss-Seidel points skip the hierarchy");
    }

    #[test]
    fn cached_run_matches_uncached_run_exactly() {
        let cache = ArtifactCache::new();
        let scenario = Scenario::exploration_bus(2).sampling_window_s(0.002);
        let cached = scenario.run_with(Some(&cache)).unwrap();
        let plain = scenario.run().unwrap();
        assert_eq!(cached.report.windows, plain.report.windows);
        assert_eq!(cached.trace.samples.len(), plain.trace.samples.len());
        for (x, y) in cached.trace.samples.iter().zip(plain.trace.samples.iter()) {
            assert_eq!(x.max_temp_k.to_bits(), y.max_temp_k.to_bits(), "bitwise-identical trace");
        }
    }

    #[test]
    fn resume_run_matches_uninterrupted_run_bitwise() {
        let scenario = Scenario::exploration_bus(2).sampling_window_s(0.002).windows(8);
        let full = scenario.run().unwrap();

        let mut emu = scenario.build().unwrap();
        let _ = emu.run_budget_observed(RunBudget::Windows(3), false, None).unwrap();
        let state = emu.checkpoint().unwrap();
        assert_eq!(state.scenario_key(), scenario.content_key());
        let state = EmulationState::from_bytes(&state.to_bytes()).unwrap();

        let resumed = scenario.resume_run(&state).unwrap();
        assert_eq!(resumed.report.windows, full.report.windows);
        assert_eq!(resumed.report.virtual_cycles, full.report.virtual_cycles);
        assert_eq!(resumed.report.aggregate, full.report.aggregate);
        assert_eq!(resumed.trace.samples.len(), full.trace.samples.len());
        for (x, y) in resumed.trace.samples.iter().zip(full.trace.samples.iter()) {
            assert_eq!(x.virtual_hz, y.virtual_hz);
            assert_eq!(x.max_temp_k.to_bits(), y.max_temp_k.to_bits(), "bitwise-identical trace");
            for (tx, ty) in x.temps_k.iter().zip(&y.temps_k) {
                assert_eq!(tx.to_bits(), ty.to_bits());
            }
        }
    }

    #[test]
    fn resume_refuses_a_checkpoint_from_a_different_scenario() {
        let scenario = Scenario::exploration_bus(2).sampling_window_s(0.002).windows(6);
        let mut emu = scenario.build().unwrap();
        let _ = emu.run_budget_observed(RunBudget::Windows(2), false, None).unwrap();
        let state = emu.checkpoint().unwrap();
        // Any configuration difference changes the content key.
        let other = scenario.clone().strict_convergence(true);
        let e = other.resume_run(&state).unwrap_err();
        assert!(matches!(e, TemuError::CheckpointMismatch { .. }), "{e:?}");
        // The matching scenario accepts the same state.
        assert!(scenario.resume_run(&state).is_ok());
    }

    #[test]
    fn cached_multigrid_build_caches_the_hierarchy() {
        let cache = ArtifactCache::new();
        let build = || {
            Scenario::exploration_bus(2)
                .implicit_solve(ImplicitSolve::Multigrid)
                .build_with(Some(&cache))
                .unwrap()
        };
        let _a = build();
        let _b = build();
        let stats = cache.stats();
        assert_eq!((stats.operator_misses, stats.operator_hits), (1, 1));
    }
}
