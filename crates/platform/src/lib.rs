//! # temu-platform — the fast MPSoC emulation engine
//!
//! This crate is the Rust stand-in for the paper's FPGA side (§3–§4): it
//! assembles TE32 cores, per-core memory controllers with L1 caches, private
//! and shared memories and a bus or NoC into a [`Machine`], executes real
//! programs on it cycle-accurately, and extracts the statistics the paper's
//! **HW sniffers** export at the three architectural levels (processors,
//! memory subsystem, interconnect).
//!
//! The engine interleaves cores in exact global-time order (always stepping
//! the core with the smallest local cycle, with interconnect-defined
//! tie-breaking), so shared-resource contention resolves identically to the
//! signal-level `temu-des` baseline — the two are cross-validated
//! cycle-exactly — while doing O(1) work per instruction, which is what gives
//! the three-orders-of-magnitude throughput gap the paper reports.
//!
//! The **Virtual Platform Clock Manager** ([`Vpcm`], §4.2) tracks the
//! relationship between emulated (virtual) cycles and FPGA (physical) time:
//! freezes caused by physically-slow memory devices or statistics-link
//! congestion extend physical time without advancing virtual time, and the
//! dual-threshold DFS policy of §7 switches the virtual clock frequency.

mod config;
mod error;
mod machine;
mod mmio;
mod sniffer;
mod stats;
mod uncore;
mod vpcm;

pub use config::{IcChoice, PlatformConfig};
pub use error::PlatformError;
pub use machine::{Machine, RunSummary};
pub use mmio::{
    Mmio, MMIO_CONSOLE, MMIO_CORE_ID, MMIO_CYCLE_HI, MMIO_CYCLE_LO, MMIO_FREQ_MHZ, MMIO_NCORES,
    MMIO_SENSOR_BASE, MMIO_SNIFFER_CTRL,
};
pub use sniffer::{Event, EventBuffer, EventKind, SnifferMode, EVENT_BYTES};
pub use stats::WindowStats;
pub use uncore::Uncore;
pub use vpcm::{DfsBand, DfsPolicy, Vpcm};
