//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmarking surface the workspace benches use — groups,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros and `black_box` — with a simple
//! measure-and-print harness: each benchmark is warmed up, then timed over
//! enough iterations to fill a fixed measurement window, and the mean time
//! per iteration (plus throughput, when declared) is printed on one line.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    samples: usize,
    /// Mean seconds per iteration of the last `iter` call.
    mean_s: f64,
}

impl Bencher {
    /// Measures `f`, storing the mean time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: run until ~20 ms elapse to estimate the
        // per-iteration cost without assuming anything about its magnitude.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            black_box(f());
            calib_iters += 1;
            if calib_start.elapsed() >= Duration::from_millis(20) {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        // Measurement: `samples` batches sized to ~25 ms each.
        let batch = ((0.025 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let s = t0.elapsed().as_secs_f64() / batch as f64;
            best = best.min(s);
            total += s;
        }
        self.mean_s = total / self.samples as f64;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the number of measurement batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher { samples: self.sample_size, mean_s: 0.0 };
        f(&mut b);
        let mut line = format!("{}/{}: {}", self.name, id, fmt_time(b.mean_s));
        if let Some(t) = self.throughput {
            let rate = match t {
                Throughput::Bytes(n) => format!("{}/s", fmt_bytes(n as f64 / b.mean_s)),
                Throughput::Elements(n) => format!("{:.3e} elem/s", n as f64 / b.mean_s),
            };
            line.push_str(&format!("  ({rate})"));
        }
        println!("{line}");
    }

    /// Runs a benchmark under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: self.default_sample_size, throughput: None }
    }
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s/iter")
    } else if s >= 1e-3 {
        format!("{:.3} ms/iter", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs/iter", s * 1e6)
    } else {
        format!("{:.1} ns/iter", s * 1e9)
    }
}

fn fmt_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.2} GiB", b / (1u64 << 30) as f64)
    } else if b >= 1e6 {
        format!("{:.2} MiB", b / (1u64 << 20) as f64)
    } else {
        format!("{:.2} KiB", b / 1024.0)
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` for a bench target (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert!(fmt_time(2.0).contains("s/iter"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_bytes(2e9).contains("GiB"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        let mut acc = 0u64;
        g.bench_function("add", |b| b.iter(|| acc = acc.wrapping_add(1)));
        g.finish();
        assert!(acc > 0);
    }
}
