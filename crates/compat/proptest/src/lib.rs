//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_filter_map`, integer/bool/range
//! strategies, [`prop_oneof!`], `prop::collection::vec`,
//! `prop::sample::select`, [`Just`], [`ProptestConfig`] and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: sampling is driven by a fixed-seed
//! deterministic RNG (stable across runs), there is **no shrinking**, and
//! `prop_assert*` panic directly (the failing inputs appear in the panic
//! message through the assertion formatting).

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    pub fn from_seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform index below `n`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample from an empty collection");
        (self.next_u64() % n as u64) as usize
    }
}

/// Test-runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Self::Value`.
///
/// `sample` returns `None` when a filter rejected the draw; the runner
/// retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value, or `None` if a filter rejected the draw.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through `f`, rejecting draws where `f` returns
    /// `None`. `reason` documents the filter (used by the real crate's
    /// statistics; kept for API compatibility).
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, f, _reason: reason }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
    _reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).and_then(&self.f)
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Strategy over the full domain of `T` — see [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types [`any`] can generate.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform strategy over every value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                Some((lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Uniform choice between boxed alternative strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T> {
    /// The alternatives (public so the macro can build one).
    pub arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        let arm = rng.index(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

/// Sub-strategy namespaces (`prop::collection`, `prop::sample`, `prop::bool`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec`s with length drawn from `size` and elements
        /// from `elem`.
        pub struct VecStrategy<S> {
            elem: S,
            size: std::ops::Range<usize>,
        }

        /// A `Vec` strategy: length in `size`, elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
                let span = self.size.end - self.size.start;
                let len = self.size.start + if span == 0 { 0 } else { rng.index(span) };
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value sets.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed set (cloned out of the input slice).
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// A strategy choosing uniformly from `items`.
        ///
        /// # Panics
        ///
        /// Panics if `items` is empty.
        pub fn select<T: Clone>(items: &[T]) -> Select<T> {
            assert!(!items.is_empty(), "cannot select from an empty slice");
            Select { items: items.to_vec() }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> Option<T> {
                Some(self.items[rng.index(self.items.len())].clone())
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The uniform boolean strategy (`prop::bool::ANY`).
        pub struct BoolAny;

        /// Uniform `true`/`false`.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> Option<bool> {
                Some(rng.next_u64() & 1 == 1)
            }
        }
    }
}

/// Strategy tuples the [`proptest!`] runner can sample jointly.
pub trait StrategyTuple {
    /// Tuple of generated values.
    type Values;

    /// Samples every component; `None` if any component's filter rejected.
    fn sample_all(&self, rng: &mut TestRng) -> Option<Self::Values>;
}

macro_rules! impl_strategy_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> StrategyTuple for ($($name,)+) {
            type Values = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_all(&self, rng: &mut TestRng) -> Option<Self::Values> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_strategy_tuple!(A);
impl_strategy_tuple!(A, B);
impl_strategy_tuple!(A, B, C);
impl_strategy_tuple!(A, B, C, D);
impl_strategy_tuple!(A, B, C, D, E);
impl_strategy_tuple!(A, B, C, D, E, F);

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)` body
/// runs for `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$attr:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_seed(0x7e57_0000_0000_0000 ^ line!() as u64);
            let __strats = ($($strat,)+);
            let mut __cases = 0u32;
            let mut __rejects = 0u32;
            while __cases < __config.cases {
                match $crate::StrategyTuple::sample_all(&__strats, &mut __rng) {
                    Some(($($pat,)+)) => {
                        { $body }
                        __cases += 1;
                    }
                    None => {
                        __rejects += 1;
                        assert!(
                            __rejects < 0x1_0000,
                            "proptest shim: more than 65536 rejected samples in {}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union { arms: vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+] }
    };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i32..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn map_and_vec(v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 0..10)) {
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&b| b % 2 == 0 && b < 8));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn oneof_and_select(x in prop_oneof![Just(1u32), 5u32..10, prop::sample::select(&[42u32, 43][..])]) {
            prop_assert!(x == 1 || (5u32..10).contains(&x) || x == 42 || x == 43);
        }
    }

    #[test]
    fn filter_map_rejects() {
        let s = (0u32..10).prop_filter_map("evens only", |x| (x % 2 == 0).then_some(x));
        let mut rng = crate::TestRng::from_seed(3);
        let mut kept = 0;
        for _ in 0..100 {
            if let Some(x) = s.sample(&mut rng) {
                assert_eq!(x % 2, 0);
                kept += 1;
            }
        }
        assert!(kept > 10);
    }
}
