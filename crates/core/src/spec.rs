//! Wire-format experiment specs: serializable [`ScenarioSpec`] /
//! [`SweepSpec`] descriptions that round-trip through JSON and lower onto
//! the fluent [`Scenario`] / [`Sweep`] builders.
//!
//! The builders are the programmatic experiment surface; the specs are the
//! same experiments as *data* — what a file, a job queue, or the
//! `temu-serve` network protocol can carry. A spec is deliberately a
//! subset of the builder API: everything it can express lowers onto
//! builder calls (never around them), so a spec-described experiment is
//! bit-identical — same [`Scenario::content_key`], same cache hits — to
//! the hand-built one. Custom closure axes ([`Sweep::axis`]) are the one
//! builder feature with no wire form; the `platforms` axis covers the
//! common case (the paper's bus/NoC/thermal platform presets).
//!
//! ```
//! use temu_framework::{SweepSpec, TemuError};
//!
//! # fn main() -> Result<(), TemuError> {
//! let text = r#"{
//!     "sweep": "bands",
//!     "base": {"preset": "paper_fig6_unmanaged", "windows": 2},
//!     "axes": [
//!         {"axis": "cores", "values": [2, 4]},
//!         {"axis": "dfs_bands", "bands": [[350.0, 340.0], [345.0, 335.0]],
//!          "high_hz": 500000000, "low_hz": 100000000}
//!     ]
//! }"#;
//! let spec = SweepSpec::from_json(text)?;
//! assert_eq!(spec.lower()?.n_points(), 4);
//! assert_eq!(SweepSpec::from_json(&spec.to_json())?, spec, "JSON round-trip");
//! # Ok(())
//! # }
//! ```
//!
//! # Lowering order
//!
//! [`ScenarioSpec::lower`] applies its fields in a fixed order — preset,
//! `cores`, `workload`, `dfs`, `sampling_window_s`, `mesh`, `solver`,
//! `strict_convergence`, budget, fit gate, `name` — so a spec always means
//! the same scenario regardless of JSON key order. [`SweepSpec::lower`]
//! applies axes in list order (first axis slowest-varying, exactly like
//! chained builder calls).
//!
//! # Errors
//!
//! Every failure — malformed JSON, an unknown preset/axis/field, a value
//! of the wrong shape, a ladder the platform rejects — is a typed
//! [`SpecError`] folded into [`TemuError::Spec`]; parsing never panics on
//! wire input.

use crate::error::TemuError;
use crate::export::{json_escape, JsonValue};
use crate::scenario::{Scenario, Workload};
use crate::sweep::Sweep;
use std::error::Error;
use std::fmt;
use temu_platform::{DfsBand, DfsPolicy, PlatformConfig};
use temu_thermal::{GridConfig, ImplicitSolve, Integrator};
use temu_workloads::dithering::DitherConfig;
use temu_workloads::matrix::MatrixConfig;

/// A failure to parse or lower a wire-format experiment spec.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum SpecError {
    /// The spec text is not valid JSON.
    Json(String),
    /// A required field is missing.
    Missing {
        /// The spec object the field belongs to.
        object: &'static str,
        /// The missing field.
        field: &'static str,
    },
    /// A field holds a value of the wrong shape.
    Bad {
        /// The spec object the field belongs to.
        object: &'static str,
        /// The offending field.
        field: String,
        /// What was wrong with it.
        detail: String,
    },
    /// An unknown tag — preset, axis, solver, workload kind, or a field
    /// name the object does not define (typos must not be silently
    /// ignored on a wire format).
    Unknown {
        /// What kind of tag was unknown.
        what: &'static str,
        /// The unrecognized value.
        got: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Missing { object, field } => {
                write!(f, "{object} spec: missing required field \"{field}\"")
            }
            SpecError::Bad { object, field, detail } => {
                write!(f, "{object} spec: field \"{field}\": {detail}")
            }
            SpecError::Unknown { what, got } => write!(f, "unknown {what} {got:?}"),
        }
    }
}

impl Error for SpecError {}

// ---------------------------------------------------------------------------
// Decode/encode plumbing
// ---------------------------------------------------------------------------

/// A typed view over one spec object: required/optional field access with
/// uniform [`SpecError`]s, plus unknown-field rejection.
struct Reader<'a> {
    object: &'static str,
    fields: &'a [(String, JsonValue)],
}

impl<'a> Reader<'a> {
    fn new(v: &'a JsonValue, object: &'static str) -> Result<Reader<'a>, SpecError> {
        match v.as_obj() {
            Some(fields) => Ok(Reader { object, fields }),
            None => Err(SpecError::Bad {
                object,
                field: String::from("(self)"),
                detail: format!("expected an object, got {}", v.type_name()),
            }),
        }
    }

    /// Rejects fields outside `known` (wire typos surface instead of
    /// silently changing the experiment).
    fn check_known(&self, known: &[&str]) -> Result<(), SpecError> {
        for (key, _) in self.fields {
            if !known.contains(&key.as_str()) {
                return Err(SpecError::Unknown {
                    what: "spec field",
                    got: format!("{}.{key}", self.object),
                });
            }
        }
        Ok(())
    }

    fn get(&self, field: &str) -> Option<&'a JsonValue> {
        self.fields.iter().find(|(k, _)| k == field).map(|(_, v)| v)
    }

    fn req(&self, field: &'static str) -> Result<&'a JsonValue, SpecError> {
        self.get(field).ok_or(SpecError::Missing { object: self.object, field })
    }

    fn bad(&self, field: &str, want: &str, got: &JsonValue) -> SpecError {
        SpecError::Bad {
            object: self.object,
            field: field.to_string(),
            detail: format!("expected {want}, got {}", got.type_name()),
        }
    }

    fn opt<T>(
        &self,
        field: &str,
        want: &str,
        read: impl Fn(&'a JsonValue) -> Option<T>,
    ) -> Result<Option<T>, SpecError> {
        match self.get(field) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => read(v).map(Some).ok_or_else(|| self.bad(field, want, v)),
        }
    }

    fn opt_u64(&self, field: &str) -> Result<Option<u64>, SpecError> {
        self.opt(field, "a non-negative integer", JsonValue::as_u64)
    }

    fn opt_u32(&self, field: &str) -> Result<Option<u32>, SpecError> {
        self.opt(field, "a 32-bit non-negative integer", |v| {
            v.as_u64().and_then(|n| u32::try_from(n).ok())
        })
    }

    fn opt_usize(&self, field: &str) -> Result<Option<usize>, SpecError> {
        self.opt(field, "a non-negative integer", JsonValue::as_usize)
    }

    fn opt_f64(&self, field: &str) -> Result<Option<f64>, SpecError> {
        self.opt(field, "a number", JsonValue::as_f64)
    }

    fn opt_bool(&self, field: &str) -> Result<Option<bool>, SpecError> {
        self.opt(field, "a boolean", JsonValue::as_bool)
    }

    fn opt_str(&self, field: &str) -> Result<Option<&'a str>, SpecError> {
        self.opt(field, "a string", |v| v.as_str())
    }

    fn req_u32(&self, field: &'static str) -> Result<u32, SpecError> {
        self.opt_u32(field)?.ok_or(SpecError::Missing { object: self.object, field })
    }

    fn req_u64(&self, field: &'static str) -> Result<u64, SpecError> {
        self.opt_u64(field)?.ok_or(SpecError::Missing { object: self.object, field })
    }

    fn req_str(&self, field: &'static str) -> Result<&'a str, SpecError> {
        self.opt_str(field)?.ok_or(SpecError::Missing { object: self.object, field })
    }

    fn req_arr(&self, field: &'static str) -> Result<&'a [JsonValue], SpecError> {
        let v = self.req(field)?;
        v.as_arr().ok_or_else(|| self.bad(field, "an array", v))
    }
}

/// Incremental single-line JSON object writer (the encode half; reading
/// goes through [`JsonValue`]).
struct ObjWriter(String);

impl ObjWriter {
    fn new() -> ObjWriter {
        ObjWriter(String::from("{"))
    }

    /// Appends `"key": value` with `value` already rendered as JSON.
    fn raw(mut self, key: &str, value: impl fmt::Display) -> ObjWriter {
        if self.0.len() > 1 {
            self.0.push_str(", ");
        }
        self.0.push('"');
        self.0.push_str(&json_escape(key));
        self.0.push_str("\": ");
        self.0.push_str(&value.to_string());
        self
    }

    fn str_field(self, key: &str, value: &str) -> ObjWriter {
        let rendered = format!("\"{}\"", json_escape(value));
        self.raw(key, rendered)
    }

    fn opt_raw(self, key: &str, value: Option<impl fmt::Display>) -> ObjWriter {
        match value {
            Some(v) => self.raw(key, v),
            None => self,
        }
    }

    fn finish(mut self) -> String {
        self.0.push('}');
        self.0
    }
}

/// Renders a slice as a JSON array of already-JSON-rendered items.
fn json_array<T: fmt::Display>(items: impl IntoIterator<Item = T>) -> String {
    let rendered: Vec<String> = items.into_iter().map(|v| v.to_string()).collect();
    format!("[{}]", rendered.join(", "))
}

/// Renders an `f64` so that parsing it back yields the identical bits
/// (Rust's shortest round-trip `Display`) — spec → JSON → spec must not
/// perturb a content key.
fn json_float(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::from("null")
    }
}

fn bands_array(bands: &[DfsBand]) -> String {
    json_array(bands.iter().map(|b| format!("[{}, {}]", json_float(b.hot_k), json_float(b.cool_k))))
}

fn parse_band(object: &'static str, v: &JsonValue) -> Result<DfsBand, SpecError> {
    let bad = |detail: String| SpecError::Bad { object, field: String::from("bands"), detail };
    let pair = v.as_arr().ok_or_else(|| bad(format!("expected [hot_k, cool_k], got {}", v.type_name())))?;
    match pair {
        [hot, cool] => match (hot.as_f64(), cool.as_f64()) {
            (Some(hot_k), Some(cool_k)) => Ok(DfsBand { hot_k, cool_k }),
            _ => Err(bad(String::from("band thresholds must be numbers"))),
        },
        _ => Err(bad(format!("expected a [hot_k, cool_k] pair, got {} element(s)", pair.len()))),
    }
}

fn solve_tag(solve: ImplicitSolve) -> &'static str {
    match solve {
        ImplicitSolve::GaussSeidel => "gs",
        ImplicitSolve::Multigrid => "mg",
        _ => "auto",
    }
}

fn parse_solve(tag: &str) -> Result<ImplicitSolve, SpecError> {
    match tag {
        "gs" => Ok(ImplicitSolve::GaussSeidel),
        "mg" => Ok(ImplicitSolve::Multigrid),
        "auto" => Ok(ImplicitSolve::Auto),
        other => Err(SpecError::Unknown { what: "implicit solver", got: other.to_string() }),
    }
}

// ---------------------------------------------------------------------------
// Component specs
// ---------------------------------------------------------------------------

/// Wire form of a [`Workload`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WorkloadSpec {
    /// The MATRIX / MATRIX-TM kernel.
    Matrix {
        /// Matrix dimension (n × n).
        n: u32,
        /// Multiplications per core.
        iters: u32,
        /// Cores participating.
        cores: u32,
    },
    /// The DITHERING filter over synthetic images.
    Dithering {
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// Number of images processed back to back.
        images: u32,
        /// Cores sharing the work.
        cores: u32,
        /// Seed of the synthetic input images.
        seed: u64,
    },
}

impl WorkloadSpec {
    /// Lowers onto the builder's [`Workload`].
    #[must_use]
    pub fn lower(&self) -> Workload {
        match *self {
            WorkloadSpec::Matrix { n, iters, cores } => Workload::Matrix(MatrixConfig { n, iters, cores }),
            WorkloadSpec::Dithering { width, height, images, cores, seed } => Workload::Dithering {
                cfg: DitherConfig { width, height, images, cores },
                seed,
            },
        }
    }

    fn to_json(&self) -> String {
        match *self {
            WorkloadSpec::Matrix { n, iters, cores } => ObjWriter::new()
                .str_field("kind", "matrix")
                .raw("n", n)
                .raw("iters", iters)
                .raw("cores", cores)
                .finish(),
            WorkloadSpec::Dithering { width, height, images, cores, seed } => ObjWriter::new()
                .str_field("kind", "dithering")
                .raw("width", width)
                .raw("height", height)
                .raw("images", images)
                .raw("cores", cores)
                .raw("seed", seed)
                .finish(),
        }
    }

    fn from_value(v: &JsonValue) -> Result<WorkloadSpec, SpecError> {
        let r = Reader::new(v, "workload")?;
        match r.req_str("kind")? {
            "matrix" => {
                r.check_known(&["kind", "n", "iters", "cores"])?;
                Ok(WorkloadSpec::Matrix {
                    n: r.req_u32("n")?,
                    iters: r.req_u32("iters")?,
                    cores: r.req_u32("cores")?,
                })
            }
            "dithering" => {
                r.check_known(&["kind", "width", "height", "images", "cores", "seed"])?;
                Ok(WorkloadSpec::Dithering {
                    width: r.req_u32("width")?,
                    height: r.req_u32("height")?,
                    images: r.req_u32("images")?,
                    cores: r.req_u32("cores")?,
                    seed: r.req_u64("seed")?,
                })
            }
            other => Err(SpecError::Unknown { what: "workload kind", got: other.to_string() }),
        }
    }
}

/// Wire form of a DFS choice: explicitly unmanaged, or a frequency ladder.
#[derive(Clone, PartialEq, Debug)]
pub enum DfsSpec {
    /// No run-time thermal management ([`Scenario::no_policy`]).
    Unmanaged,
    /// An N-level frequency ladder ([`DfsPolicy::ladder`]).
    Ladder {
        /// Clock levels in Hz, strictly descending.
        levels_hz: Vec<u64>,
        /// The N−1 hysteresis bands between adjacent levels.
        bands: Vec<DfsBand>,
    },
}

impl DfsSpec {
    /// The paper's dual-threshold policy (350/340 K between 500/100 MHz)
    /// as a spec.
    #[must_use]
    pub fn paper() -> DfsSpec {
        DfsSpec::Ladder {
            levels_hz: vec![500_000_000, 100_000_000],
            bands: vec![DfsBand { hot_k: 350.0, cool_k: 340.0 }],
        }
    }

    /// Lowers onto a policy choice (`None` = unmanaged).
    ///
    /// # Errors
    ///
    /// [`TemuError::Platform`] for a malformed ladder.
    pub fn lower(&self) -> Result<Option<DfsPolicy>, TemuError> {
        match self {
            DfsSpec::Unmanaged => Ok(None),
            DfsSpec::Ladder { levels_hz, bands } => Ok(Some(DfsPolicy::ladder(levels_hz, bands)?)),
        }
    }

    fn to_json(&self) -> String {
        match self {
            DfsSpec::Unmanaged => String::from("\"none\""),
            DfsSpec::Ladder { levels_hz, bands } => ObjWriter::new()
                .raw("levels_hz", json_array(levels_hz.iter()))
                .raw("bands", bands_array(bands))
                .finish(),
        }
    }

    fn from_value(v: &JsonValue) -> Result<DfsSpec, SpecError> {
        if let Some(tag) = v.as_str() {
            return match tag {
                "none" => Ok(DfsSpec::Unmanaged),
                other => Err(SpecError::Unknown { what: "dfs spec", got: other.to_string() }),
            };
        }
        let r = Reader::new(v, "dfs")?;
        r.check_known(&["levels_hz", "bands"])?;
        let levels_hz = r
            .req_arr("levels_hz")?
            .iter()
            .map(|v| v.as_u64().ok_or_else(|| r.bad("levels_hz", "an array of Hz integers", v)))
            .collect::<Result<Vec<u64>, SpecError>>()?;
        let bands = r
            .req_arr("bands")?
            .iter()
            .map(|b| parse_band("dfs", b))
            .collect::<Result<Vec<DfsBand>, SpecError>>()?;
        Ok(DfsSpec::Ladder { levels_hz, bands })
    }
}

/// Wire form of a platform preset (the paper's §7 platforms).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlatformSpec {
    /// Which preset family: `"bus"` ([`PlatformConfig::paper_bus`]),
    /// `"noc"` ([`PlatformConfig::paper_noc`]) or `"thermal"`
    /// ([`PlatformConfig::paper_thermal`]).
    pub kind: String,
    /// Core count the preset is instantiated for.
    pub cores: usize,
}

impl PlatformSpec {
    /// Lowers onto the platform preset.
    ///
    /// # Errors
    ///
    /// [`SpecError::Unknown`] for an unknown preset family.
    pub fn lower(&self) -> Result<PlatformConfig, SpecError> {
        match self.kind.as_str() {
            "bus" => Ok(PlatformConfig::paper_bus(self.cores)),
            "noc" => Ok(PlatformConfig::paper_noc(self.cores)),
            "thermal" => Ok(PlatformConfig::paper_thermal(self.cores)),
            other => Err(SpecError::Unknown { what: "platform kind", got: other.to_string() }),
        }
    }

    fn label(&self) -> String {
        format!("{}{}", self.kind, self.cores)
    }

    fn to_json(&self) -> String {
        ObjWriter::new().str_field("kind", &self.kind).raw("cores", self.cores).finish()
    }

    fn from_value(v: &JsonValue) -> Result<PlatformSpec, SpecError> {
        let r = Reader::new(v, "platform")?;
        r.check_known(&["kind", "cores"])?;
        let spec = PlatformSpec {
            kind: r.req_str("kind")?.to_string(),
            cores: r.opt_usize("cores")?.ok_or(SpecError::Missing { object: "platform", field: "cores" })?,
        };
        // Validate the family eagerly so a bad spec fails at parse time.
        spec.lower()?;
        Ok(spec)
    }
}

/// Wire form of the thermal meshing knobs: overrides applied on top of
/// [`GridConfig::default`]. Only the fields a design-space sweep varies
/// are expressible; everything else keeps the paper's defaults.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MeshSpec {
    /// Ambient temperature, K.
    pub ambient_k: Option<f64>,
    /// Silicon layers in z.
    pub si_layers: Option<usize>,
    /// Copper-spreader layers in z.
    pub cu_layers: Option<usize>,
    /// Subdivision of a normal component.
    pub default_div: Option<usize>,
    /// Subdivision of a `hot` component.
    pub hot_div: Option<usize>,
    /// Filler tiling pitch, µm.
    pub filler_pitch_um: Option<f64>,
    /// Package-to-air resistance, K/W.
    pub package_to_air: Option<f64>,
    /// Semi-implicit substep length, seconds.
    pub dt_s: Option<f64>,
}

impl MeshSpec {
    const FIELDS: [&'static str; 8] = [
        "ambient_k",
        "si_layers",
        "cu_layers",
        "default_div",
        "hot_div",
        "filler_pitch_um",
        "package_to_air",
        "dt_s",
    ];

    /// Lowers onto a [`GridConfig`] (defaults plus the set overrides).
    /// Validation happens where it always does — when the scenario builds
    /// its thermal grid — so a bad mesh is a per-point typed error.
    #[must_use]
    pub fn lower(&self) -> GridConfig {
        let mut g = GridConfig::default();
        if let Some(v) = self.ambient_k {
            g.ambient_k = v;
        }
        if let Some(v) = self.si_layers {
            g.si_layers = v;
        }
        if let Some(v) = self.cu_layers {
            g.cu_layers = v;
        }
        if let Some(v) = self.default_div {
            g.default_div = v;
        }
        if let Some(v) = self.hot_div {
            g.hot_div = v;
        }
        if let Some(v) = self.filler_pitch_um {
            g.filler_pitch_um = v;
        }
        if let Some(v) = self.package_to_air {
            g.package_to_air = v;
        }
        if let Some(dt) = self.dt_s {
            g.integrator = Integrator::SemiImplicit { dt };
        }
        g
    }

    /// Writes the set fields (plus `extra` leading fields, used by the
    /// `meshes` axis to prepend the point name).
    fn fields_json(&self, writer: ObjWriter) -> String {
        writer
            .opt_raw("ambient_k", self.ambient_k.map(json_float))
            .opt_raw("si_layers", self.si_layers)
            .opt_raw("cu_layers", self.cu_layers)
            .opt_raw("default_div", self.default_div)
            .opt_raw("hot_div", self.hot_div)
            .opt_raw("filler_pitch_um", self.filler_pitch_um.map(json_float))
            .opt_raw("package_to_air", self.package_to_air.map(json_float))
            .opt_raw("dt_s", self.dt_s.map(json_float))
            .finish()
    }

    fn to_json(&self) -> String {
        self.fields_json(ObjWriter::new())
    }

    fn read(r: &Reader<'_>) -> Result<MeshSpec, SpecError> {
        Ok(MeshSpec {
            ambient_k: r.opt_f64("ambient_k")?,
            si_layers: r.opt_usize("si_layers")?,
            cu_layers: r.opt_usize("cu_layers")?,
            default_div: r.opt_usize("default_div")?,
            hot_div: r.opt_usize("hot_div")?,
            filler_pitch_um: r.opt_f64("filler_pitch_um")?,
            package_to_air: r.opt_f64("package_to_air")?,
            dt_s: r.opt_f64("dt_s")?,
        })
    }

    fn from_value(v: &JsonValue) -> Result<MeshSpec, SpecError> {
        let r = Reader::new(v, "mesh")?;
        r.check_known(&MeshSpec::FIELDS)?;
        MeshSpec::read(&r)
    }
}

// ---------------------------------------------------------------------------
// ScenarioSpec
// ---------------------------------------------------------------------------

/// Wire form of one [`Scenario`]: a named preset plus overrides (see the
/// module docs for the lowering order). All fields default to "keep what
/// the preset chose".
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ScenarioSpec {
    /// Scenario preset: `"new"` (default), `"paper_fig6"`,
    /// `"paper_fig6_unmanaged"`, `"thermal_stress"`, `"exploration_bus"`,
    /// `"exploration_noc"`.
    pub preset: Option<String>,
    /// The preset's parameter: iterations for `thermal_stress`, cores for
    /// the exploration presets.
    pub preset_arg: Option<u64>,
    /// Display name override ([`Scenario::name`]; excluded from the
    /// content key).
    pub name: Option<String>,
    /// Core-count retarget ([`Scenario::cores`]).
    pub cores: Option<usize>,
    /// Workload replacement.
    pub workload: Option<WorkloadSpec>,
    /// DFS policy replacement (explicit `"none"` = unmanaged).
    pub dfs: Option<DfsSpec>,
    /// Statistics sampling window, virtual seconds.
    pub sampling_window_s: Option<f64>,
    /// Thermal meshing overrides.
    pub mesh: Option<MeshSpec>,
    /// Implicit-solver choice (`"gs"`, `"mg"`, `"auto"`).
    pub solver: Option<ImplicitSolve>,
    /// Strict solver convergence ([`Scenario::strict_convergence`]).
    pub strict_convergence: Option<bool>,
    /// Run exactly this many sampling windows (mutually exclusive with
    /// `to_halt`).
    pub windows: Option<u64>,
    /// Run to halt, capped at this many windows.
    pub to_halt: Option<u64>,
    /// Gate the build on the paper's Virtex-2 Pro VP30.
    pub check_fit_v2vp30: bool,
}

impl ScenarioSpec {
    const FIELDS: [&'static str; 13] = [
        "preset",
        "preset_arg",
        "name",
        "cores",
        "workload",
        "dfs",
        "sampling_window_s",
        "mesh",
        "solver",
        "strict_convergence",
        "windows",
        "to_halt",
        "check_fit_v2vp30",
    ];

    /// A spec selecting a preset by name, no overrides.
    #[must_use]
    pub fn preset(name: &str) -> ScenarioSpec {
        ScenarioSpec { preset: Some(name.to_string()), ..ScenarioSpec::default() }
    }

    /// A spec selecting a parameterized preset.
    #[must_use]
    pub fn preset_with(name: &str, arg: u64) -> ScenarioSpec {
        ScenarioSpec { preset: Some(name.to_string()), preset_arg: Some(arg), ..ScenarioSpec::default() }
    }

    /// Lowers the spec onto the fluent builder (see the module docs for
    /// the application order).
    ///
    /// # Errors
    ///
    /// [`TemuError::Spec`] for an unknown preset, a missing/invalid preset
    /// argument, or both budgets set; [`TemuError::Platform`] for a
    /// malformed DFS ladder.
    pub fn lower(&self) -> Result<Scenario, TemuError> {
        let preset = self.preset.as_deref().unwrap_or("new");
        let arg = |field: &'static str| {
            self.preset_arg.ok_or(SpecError::Missing { object: "scenario", field })
        };
        let mut s = match preset {
            "new" => Scenario::new(),
            "paper_fig6" => Scenario::paper_fig6(),
            "paper_fig6_unmanaged" => Scenario::paper_fig6_unmanaged(),
            "thermal_stress" => {
                let iters = u32::try_from(arg("preset_arg (iterations)")?).map_err(|_| {
                    SpecError::Bad {
                        object: "scenario",
                        field: String::from("preset_arg"),
                        detail: String::from("thermal_stress iterations must fit in 32 bits"),
                    }
                })?;
                Scenario::thermal_stress(iters)
            }
            "exploration_bus" => Scenario::exploration_bus(arg("preset_arg (cores)")? as usize),
            "exploration_noc" => Scenario::exploration_noc(arg("preset_arg (cores)")? as usize),
            other => {
                return Err(SpecError::Unknown { what: "scenario preset", got: other.to_string() }.into())
            }
        };
        if let Some(n) = self.cores {
            s = s.cores(n);
        }
        if let Some(w) = &self.workload {
            s = s.workload(w.lower());
        }
        if let Some(dfs) = &self.dfs {
            s = match dfs.lower()? {
                Some(policy) => s.policy(policy),
                None => s.no_policy(),
            };
        }
        if let Some(window) = self.sampling_window_s {
            s = s.sampling_window_s(window);
        }
        if let Some(mesh) = &self.mesh {
            s = s.grid(mesh.lower());
        }
        if let Some(solve) = self.solver {
            s = s.implicit_solve(solve);
        }
        if let Some(strict) = self.strict_convergence {
            s = s.strict_convergence(strict);
        }
        match (self.windows, self.to_halt) {
            (Some(_), Some(_)) => {
                return Err(SpecError::Bad {
                    object: "scenario",
                    field: String::from("windows"),
                    detail: String::from("\"windows\" and \"to_halt\" are mutually exclusive"),
                }
                .into())
            }
            (Some(n), None) => s = s.windows(n),
            (None, Some(max)) => s = s.to_halt(max),
            (None, None) => {}
        }
        if self.check_fit_v2vp30 {
            s = s.check_fit_v2vp30();
        }
        if let Some(name) = &self.name {
            s = s.name(name.clone());
        }
        Ok(s)
    }

    /// Serializes the spec as one JSON object (only the set fields).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        if let Some(p) = &self.preset {
            w = w.str_field("preset", p);
        }
        w = w.opt_raw("preset_arg", self.preset_arg);
        if let Some(n) = &self.name {
            w = w.str_field("name", n);
        }
        w = w.opt_raw("cores", self.cores);
        w = w.opt_raw("workload", self.workload.as_ref().map(WorkloadSpec::to_json));
        w = w.opt_raw("dfs", self.dfs.as_ref().map(DfsSpec::to_json));
        w = w.opt_raw("sampling_window_s", self.sampling_window_s.map(json_float));
        w = w.opt_raw("mesh", self.mesh.as_ref().map(MeshSpec::to_json));
        w = w.opt_raw("solver", self.solver.map(|s| format!("\"{}\"", solve_tag(s))));
        w = w.opt_raw("strict_convergence", self.strict_convergence);
        w = w.opt_raw("windows", self.windows);
        w = w.opt_raw("to_halt", self.to_halt);
        if self.check_fit_v2vp30 {
            w = w.raw("check_fit_v2vp30", true);
        }
        w.finish()
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`TemuError::Spec`] describing the first problem.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, TemuError> {
        let v = JsonValue::parse(text).map_err(SpecError::Json)?;
        Ok(ScenarioSpec::from_value(&v)?)
    }

    /// Parses a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError`] describing the first problem.
    pub fn from_value(v: &JsonValue) -> Result<ScenarioSpec, SpecError> {
        let r = Reader::new(v, "scenario")?;
        r.check_known(&ScenarioSpec::FIELDS)?;
        Ok(ScenarioSpec {
            preset: r.opt_str("preset")?.map(String::from),
            preset_arg: r.opt_u64("preset_arg")?,
            name: r.opt_str("name")?.map(String::from),
            cores: r.opt_usize("cores")?,
            workload: r.get("workload").map(WorkloadSpec::from_value).transpose()?,
            dfs: r.get("dfs").map(DfsSpec::from_value).transpose()?,
            sampling_window_s: r.opt_f64("sampling_window_s")?,
            mesh: r.get("mesh").map(MeshSpec::from_value).transpose()?,
            solver: r.opt_str("solver")?.map(parse_solve).transpose()?,
            strict_convergence: r.opt_bool("strict_convergence")?,
            windows: r.opt_u64("windows")?,
            to_halt: r.opt_u64("to_halt")?,
            check_fit_v2vp30: r.opt_bool("check_fit_v2vp30")?.unwrap_or(false),
        })
    }
}

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

/// Wire form of one [`Sweep`] axis. Each variant lowers onto the
/// corresponding builder axis; list order in [`SweepSpec::axes`] is grid
/// order (first axis slowest-varying).
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum AxisSpec {
    /// [`Sweep::cores`].
    Cores(Vec<usize>),
    /// [`Sweep::windows`].
    Windows(Vec<u64>),
    /// [`Sweep::dfs_bands`]: two-level policies between shared
    /// frequencies, built per grid point (a bad pair is that point's typed
    /// error).
    DfsBands {
        /// `(hot_k, cool_k)` threshold pairs, one per grid point.
        bands: Vec<(f64, f64)>,
        /// Fast clock, Hz.
        high_hz: u64,
        /// Throttled clock, Hz.
        low_hz: u64,
    },
    /// [`Sweep::dfs_ladders`]: shared levels, per-point band sets.
    DfsLadders {
        /// Clock levels, Hz, strictly descending.
        levels_hz: Vec<u64>,
        /// One band set per grid point.
        band_sets: Vec<Vec<DfsBand>>,
    },
    /// [`Sweep::dfs_policies`]: fully-described policy choices (built
    /// eagerly when the spec lowers).
    DfsPolicies(Vec<DfsSpec>),
    /// A platform-preset axis (the wire form of the §7
    /// bus-vs-NoC exploration).
    Platforms(Vec<PlatformSpec>),
    /// [`Sweep::meshes`]: named meshing-override points.
    Meshes(Vec<(String, MeshSpec)>),
    /// [`Sweep::workloads`].
    Workloads(Vec<WorkloadSpec>),
    /// [`Sweep::implicit_solves`].
    Solvers(Vec<ImplicitSolve>),
}

impl AxisSpec {
    /// Applies this axis to a sweep under construction.
    fn apply(&self, sweep: Sweep) -> Result<Sweep, TemuError> {
        Ok(match self {
            AxisSpec::Cores(values) => sweep.cores(values),
            AxisSpec::Windows(values) => sweep.windows(values),
            AxisSpec::DfsBands { bands, high_hz, low_hz } => sweep.dfs_bands(bands, *high_hz, *low_hz),
            AxisSpec::DfsLadders { levels_hz, band_sets } => {
                sweep.dfs_ladders(levels_hz.clone(), band_sets.clone())
            }
            AxisSpec::DfsPolicies(specs) => {
                let policies = specs.iter().map(DfsSpec::lower).collect::<Result<Vec<_>, _>>()?;
                sweep.dfs_policies(policies)
            }
            AxisSpec::Platforms(specs) => {
                let resolved = specs
                    .iter()
                    .map(|p| Ok((p.label(), p.lower()?)))
                    .collect::<Result<Vec<(String, PlatformConfig)>, SpecError>>()?;
                sweep.axis("platform", resolved, |(label, _)| label.clone(), |s, (_, platform)| {
                    Ok(s.platform(platform.clone()))
                })
            }
            AxisSpec::Meshes(points) => {
                sweep.meshes(points.iter().map(|(name, m)| (name.clone(), m.lower())).collect())
            }
            AxisSpec::Workloads(specs) => sweep.workloads(specs.iter().map(WorkloadSpec::lower).collect()),
            AxisSpec::Solvers(values) => sweep.implicit_solves(values),
        })
    }

    fn to_json(&self) -> String {
        match self {
            AxisSpec::Cores(values) => {
                ObjWriter::new().str_field("axis", "cores").raw("values", json_array(values.iter())).finish()
            }
            AxisSpec::Windows(values) => ObjWriter::new()
                .str_field("axis", "windows")
                .raw("values", json_array(values.iter()))
                .finish(),
            AxisSpec::DfsBands { bands, high_hz, low_hz } => ObjWriter::new()
                .str_field("axis", "dfs_bands")
                .raw(
                    "bands",
                    json_array(
                        bands.iter().map(|(hot, cool)| format!("[{}, {}]", json_float(*hot), json_float(*cool))),
                    ),
                )
                .raw("high_hz", high_hz)
                .raw("low_hz", low_hz)
                .finish(),
            AxisSpec::DfsLadders { levels_hz, band_sets } => ObjWriter::new()
                .str_field("axis", "dfs_ladders")
                .raw("levels_hz", json_array(levels_hz.iter()))
                .raw("band_sets", json_array(band_sets.iter().map(|set| bands_array(set))))
                .finish(),
            AxisSpec::DfsPolicies(specs) => ObjWriter::new()
                .str_field("axis", "dfs_policies")
                .raw("values", json_array(specs.iter().map(DfsSpec::to_json)))
                .finish(),
            AxisSpec::Platforms(specs) => ObjWriter::new()
                .str_field("axis", "platforms")
                .raw("values", json_array(specs.iter().map(PlatformSpec::to_json)))
                .finish(),
            AxisSpec::Meshes(points) => ObjWriter::new()
                .str_field("axis", "meshes")
                .raw(
                    "values",
                    json_array(
                        points.iter().map(|(name, m)| m.fields_json(ObjWriter::new().str_field("name", name))),
                    ),
                )
                .finish(),
            AxisSpec::Workloads(specs) => ObjWriter::new()
                .str_field("axis", "workloads")
                .raw("values", json_array(specs.iter().map(WorkloadSpec::to_json)))
                .finish(),
            AxisSpec::Solvers(values) => ObjWriter::new()
                .str_field("axis", "solvers")
                .raw("values", json_array(values.iter().map(|s| format!("\"{}\"", solve_tag(*s)))))
                .finish(),
        }
    }

    fn from_value(v: &JsonValue) -> Result<AxisSpec, SpecError> {
        let r = Reader::new(v, "axis")?;
        let axis = r.req_str("axis")?;
        let values = || r.req_arr("values");
        match axis {
            "cores" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Cores(
                    values()?
                        .iter()
                        .map(|v| v.as_usize().ok_or_else(|| r.bad("values", "core counts", v)))
                        .collect::<Result<_, _>>()?,
                ))
            }
            "windows" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Windows(
                    values()?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| r.bad("values", "window counts", v)))
                        .collect::<Result<_, _>>()?,
                ))
            }
            "dfs_bands" => {
                r.check_known(&["axis", "bands", "high_hz", "low_hz"])?;
                Ok(AxisSpec::DfsBands {
                    bands: r
                        .req_arr("bands")?
                        .iter()
                        .map(|b| parse_band("axis", b).map(|b| (b.hot_k, b.cool_k)))
                        .collect::<Result<_, _>>()?,
                    high_hz: r.req_u64("high_hz")?,
                    low_hz: r.req_u64("low_hz")?,
                })
            }
            "dfs_ladders" => {
                r.check_known(&["axis", "levels_hz", "band_sets"])?;
                Ok(AxisSpec::DfsLadders {
                    levels_hz: r
                        .req_arr("levels_hz")?
                        .iter()
                        .map(|v| v.as_u64().ok_or_else(|| r.bad("levels_hz", "Hz integers", v)))
                        .collect::<Result<_, _>>()?,
                    band_sets: r
                        .req_arr("band_sets")?
                        .iter()
                        .map(|set| {
                            set.as_arr()
                                .ok_or_else(|| r.bad("band_sets", "arrays of bands", set))?
                                .iter()
                                .map(|b| parse_band("axis", b))
                                .collect::<Result<Vec<DfsBand>, SpecError>>()
                        })
                        .collect::<Result<_, _>>()?,
                })
            }
            "dfs_policies" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::DfsPolicies(
                    values()?.iter().map(DfsSpec::from_value).collect::<Result<_, _>>()?,
                ))
            }
            "platforms" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Platforms(
                    values()?.iter().map(PlatformSpec::from_value).collect::<Result<_, _>>()?,
                ))
            }
            "meshes" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Meshes(
                    values()?
                        .iter()
                        .map(|point| {
                            let pr = Reader::new(point, "mesh point")?;
                            let mut known = vec!["name"];
                            known.extend_from_slice(&MeshSpec::FIELDS);
                            pr.check_known(&known)?;
                            Ok((pr.req_str("name")?.to_string(), MeshSpec::read(&pr)?))
                        })
                        .collect::<Result<_, SpecError>>()?,
                ))
            }
            "workloads" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Workloads(
                    values()?.iter().map(WorkloadSpec::from_value).collect::<Result<_, _>>()?,
                ))
            }
            "solvers" => {
                r.check_known(&["axis", "values"])?;
                Ok(AxisSpec::Solvers(
                    values()?
                        .iter()
                        .map(|v| {
                            v.as_str()
                                .ok_or_else(|| r.bad("values", "solver tags", v))
                                .and_then(parse_solve)
                        })
                        .collect::<Result<_, _>>()?,
                ))
            }
            other => Err(SpecError::Unknown { what: "sweep axis", got: other.to_string() }),
        }
    }
}

/// Wire form of one [`Sweep`]: a named base scenario plus axes.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepSpec {
    /// The sweep's name (prefixed onto every point's scenario name).
    pub name: String,
    /// The base scenario every grid point starts from.
    pub base: ScenarioSpec,
    /// The grid axes, first slowest-varying.
    pub axes: Vec<AxisSpec>,
    /// Campaign worker-thread override for executed points.
    pub threads: Option<usize>,
}

/// The named sweep presets [`SweepSpec::named`] resolves, with one-line
/// descriptions (shared by `temu-client --preset` and the `temu-bench`
/// `sweep` bin).
pub const NAMED_SWEEPS: &[(&str, &str)] = &[
    ("smoke", "8-point strict-convergence grid (tiny workloads × gs/mg) — the check.sh gate"),
    ("ladder", "DFS frequency ladders (none/2/3/4-level) × run budgets on the Fig. 6 stress workload (heavy: minutes/point on one core)"),
    ("mesh", "mesh resolution × implicit solver, strict convergence (6 points)"),
    ("explore", "platform (bus/NoC) × workload × core count (the §7 exploration, 12 points)"),
    ("grid100", "100-point grid of tiny scenarios (cache/incremental-rerun demo)"),
];

/// The tiny near-instant workload the smoke/grid presets sweep over.
fn tiny_workload(iters: u32) -> WorkloadSpec {
    WorkloadSpec::Matrix { n: 4, iters, cores: 1 }
}

/// One-core half-millisecond-window base scenario for the tiny grids.
fn tiny_base() -> ScenarioSpec {
    ScenarioSpec {
        cores: Some(1),
        workload: Some(tiny_workload(1)),
        sampling_window_s: Some(0.0005),
        windows: Some(2),
        ..ScenarioSpec::default()
    }
}

impl SweepSpec {
    /// A sweep spec with no axes yet.
    #[must_use]
    pub fn new(name: impl Into<String>, base: ScenarioSpec) -> SweepSpec {
        SweepSpec { name: name.into(), base, axes: Vec::new(), threads: None }
    }

    /// Resolves one of the named sweep presets (see [`NAMED_SWEEPS`]).
    #[must_use]
    pub fn named(name: &str) -> Option<SweepSpec> {
        let spec = match name {
            "smoke" => SweepSpec {
                name: String::from("smoke"),
                base: ScenarioSpec { strict_convergence: Some(true), ..tiny_base() },
                axes: vec![
                    AxisSpec::Workloads((1..=4).map(tiny_workload).collect()),
                    AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
                ],
                threads: None,
            },
            "ladder" => {
                let three = DfsSpec::Ladder {
                    levels_hz: vec![500_000_000, 250_000_000, 100_000_000],
                    bands: vec![
                        DfsBand { hot_k: 345.0, cool_k: 335.0 },
                        DfsBand { hot_k: 355.0, cool_k: 345.0 },
                    ],
                };
                let four = DfsSpec::Ladder {
                    levels_hz: vec![500_000_000, 333_000_000, 250_000_000, 100_000_000],
                    bands: vec![
                        DfsBand { hot_k: 342.0, cool_k: 334.0 },
                        DfsBand { hot_k: 350.0, cool_k: 341.0 },
                        DfsBand { hot_k: 358.0, cool_k: 349.0 },
                    ],
                };
                SweepSpec {
                    name: String::from("ladder"),
                    base: ScenarioSpec::preset("paper_fig6_unmanaged"),
                    axes: vec![
                        AxisSpec::DfsPolicies(vec![DfsSpec::Unmanaged, DfsSpec::paper(), three, four]),
                        AxisSpec::Windows(vec![150, 300]),
                    ],
                    threads: None,
                }
            }
            "mesh" => SweepSpec {
                name: String::from("mesh"),
                base: ScenarioSpec {
                    sampling_window_s: Some(0.002),
                    strict_convergence: Some(true),
                    ..ScenarioSpec::preset_with("exploration_bus", 2)
                },
                axes: vec![
                    AxisSpec::Meshes(vec![
                        (String::from("paper"), MeshSpec::default()),
                        (
                            String::from("fine"),
                            MeshSpec {
                                default_div: Some(3),
                                hot_div: Some(5),
                                filler_pitch_um: Some(600.0),
                                ..MeshSpec::default()
                            },
                        ),
                        (
                            String::from("xfine"),
                            MeshSpec {
                                default_div: Some(4),
                                hot_div: Some(7),
                                filler_pitch_um: Some(400.0),
                                ..MeshSpec::default()
                            },
                        ),
                    ]),
                    AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
                ],
                threads: None,
            },
            "explore" => SweepSpec {
                name: String::from("explore"),
                base: ScenarioSpec { sampling_window_s: Some(0.002), ..ScenarioSpec::default() },
                axes: vec![
                    AxisSpec::Platforms(vec![
                        PlatformSpec { kind: String::from("bus"), cores: 4 },
                        PlatformSpec { kind: String::from("noc"), cores: 4 },
                    ]),
                    AxisSpec::Workloads(vec![
                        WorkloadSpec::Matrix { n: 8, iters: 1, cores: 4 },
                        WorkloadSpec::Dithering { width: 64, height: 64, images: 2, cores: 4, seed: 7 },
                    ]),
                    AxisSpec::Cores(vec![1, 2, 4]),
                ],
                threads: None,
            },
            "grid100" => SweepSpec {
                name: String::from("grid100"),
                base: tiny_base(),
                axes: vec![
                    AxisSpec::Workloads((1..=5).map(tiny_workload).collect()),
                    AxisSpec::DfsBands {
                        bands: vec![
                            (340.0, 330.0),
                            (345.0, 335.0),
                            (350.0, 340.0),
                            (355.0, 345.0),
                            (360.0, 350.0),
                        ],
                        high_hz: 500_000_000,
                        low_hz: 100_000_000,
                    },
                    AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
                    AxisSpec::Windows(vec![1, 2]),
                ],
                threads: None,
            },
            _ => return None,
        };
        Some(spec)
    }

    /// Lowers the spec onto the fluent [`Sweep`] builder.
    ///
    /// # Errors
    ///
    /// [`TemuError::Spec`] from the base scenario or an axis;
    /// [`TemuError::Platform`] for an eagerly-built malformed DFS policy.
    pub fn lower(&self) -> Result<Sweep, TemuError> {
        let mut sweep = Sweep::new(self.name.clone(), self.base.lower()?);
        for axis in &self.axes {
            sweep = axis.apply(sweep)?;
        }
        if let Some(threads) = self.threads {
            sweep = sweep.threads(threads);
        }
        Ok(sweep)
    }

    /// Serializes the spec as one JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjWriter::new()
            .str_field("sweep", &self.name)
            .opt_raw("threads", self.threads)
            .raw("base", self.base.to_json())
            .raw("axes", json_array(self.axes.iter().map(AxisSpec::to_json)))
            .finish()
    }

    /// The content key of every grid point, in expansion order
    /// ([`Sweep::expand`]): `Some(key)` for well-formed points, `None`
    /// for points whose axis application fails (those carry a typed
    /// per-point error when run). This is the spec-level view of the
    /// cache's addressing — what a fleet front-end shards on.
    ///
    /// # Errors
    ///
    /// The same lowering errors as [`SweepSpec::lower`]: a malformed
    /// *base* fails the whole spec, while a malformed *point* is just
    /// `None` in its slot.
    pub fn point_keys(&self) -> Result<Vec<Option<u64>>, TemuError> {
        Ok(self.lower()?.expand().iter().map(|p| p.key).collect())
    }

    /// One stable content key for the *whole* sweep: FNV-1a over the
    /// grid-point keys in expansion order (a marker byte distinguishes
    /// malformed points). Like [`Scenario::content_key`] it depends only
    /// on what would execute — not on the sweep's display name or thread
    /// count — so a renamed resubmission of the same grid hashes
    /// identically. The fleet router rendezvous-hashes this key to pick
    /// the member that owns (and caches) the sweep.
    ///
    /// # Errors
    ///
    /// The same lowering errors as [`SweepSpec::lower`].
    pub fn content_key(&self) -> Result<u64, TemuError> {
        let keys = self.point_keys()?;
        let mut bytes = Vec::with_capacity(keys.len() * 9);
        for key in keys {
            match key {
                Some(k) => {
                    bytes.push(1u8);
                    bytes.extend_from_slice(&k.to_le_bytes());
                }
                None => bytes.push(0u8),
            }
        }
        Ok(crate::sweep::fnv1a64(&bytes))
    }

    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`TemuError::Spec`] describing the first problem.
    pub fn from_json(text: &str) -> Result<SweepSpec, TemuError> {
        let v = JsonValue::parse(text).map_err(SpecError::Json)?;
        Ok(SweepSpec::from_value(&v)?)
    }

    /// Parses a spec from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// [`SpecError`] describing the first problem.
    pub fn from_value(v: &JsonValue) -> Result<SweepSpec, SpecError> {
        let r = Reader::new(v, "sweep")?;
        r.check_known(&["sweep", "base", "axes", "threads"])?;
        let base = match r.get("base") {
            Some(b) => ScenarioSpec::from_value(b)?,
            None => ScenarioSpec::default(),
        };
        let axes = match r.get("axes") {
            Some(v) => v
                .as_arr()
                .ok_or_else(|| r.bad("axes", "an array of axis objects", v))?
                .iter()
                .map(AxisSpec::from_value)
                .collect::<Result<Vec<AxisSpec>, SpecError>>()?,
            None => Vec::new(),
        };
        Ok(SweepSpec { name: r.req_str("sweep")?.to_string(), base, axes, threads: r.opt_usize("threads")? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_lowers_to_the_default_scenario() {
        let spec = ScenarioSpec::default();
        assert_eq!(spec.lower().unwrap().content_key(), Scenario::new().content_key());
        assert_eq!(spec.to_json(), "{}");
        assert_eq!(ScenarioSpec::from_json("{}").unwrap(), spec);
    }

    #[test]
    fn sweep_content_key_tracks_the_grid_not_the_name() {
        let spec = SweepSpec::named("smoke").unwrap();
        let keys = spec.point_keys().unwrap();
        assert_eq!(keys.len(), spec.lower().unwrap().n_points());
        assert!(keys.iter().all(Option::is_some), "every smoke point is well-formed");

        let mut renamed = spec.clone();
        renamed.name = String::from("renamed");
        renamed.threads = Some(3);
        assert_eq!(
            spec.content_key().unwrap(),
            renamed.content_key().unwrap(),
            "name and threads do not change what executes"
        );
        let other = SweepSpec::named("ladder").unwrap();
        assert_ne!(spec.content_key().unwrap(), other.content_key().unwrap());
    }

    #[test]
    fn unknown_fields_and_tags_are_typed_errors() {
        let e = ScenarioSpec::from_json("{\"platfrom\": 4}").unwrap_err();
        assert!(matches!(e, TemuError::Spec(SpecError::Unknown { .. })), "{e}");
        let e = ScenarioSpec::from_json("{\"preset\": \"nope\"}").unwrap().lower().unwrap_err();
        assert!(matches!(e, TemuError::Spec(SpecError::Unknown { .. })), "{e}");
        let e = ScenarioSpec::from_json("not json").unwrap_err();
        assert!(matches!(e, TemuError::Spec(SpecError::Json(_))), "{e}");
        let e = SweepSpec::from_json("{\"sweep\": \"x\", \"axes\": [{\"axis\": \"nope\"}]}").unwrap_err();
        assert!(matches!(e, TemuError::Spec(SpecError::Unknown { .. })), "{e}");
    }

    #[test]
    fn both_budgets_reject() {
        let spec = ScenarioSpec { windows: Some(2), to_halt: Some(3), ..ScenarioSpec::default() };
        assert!(matches!(spec.lower().unwrap_err(), TemuError::Spec(SpecError::Bad { .. })));
    }

    #[test]
    fn every_named_sweep_parses_and_lowers() {
        for (name, _) in NAMED_SWEEPS {
            let spec = SweepSpec::named(name).expect("preset exists");
            let sweep = spec.lower().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(sweep.n_points() > 0, "{name} expands to a non-empty grid");
            let round = SweepSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(round, spec, "{name} survives the JSON round trip");
        }
        assert_eq!(SweepSpec::named("smoke").unwrap().lower().unwrap().n_points(), 8);
        assert_eq!(SweepSpec::named("grid100").unwrap().lower().unwrap().n_points(), 100);
        assert!(SweepSpec::named("nope").is_none());
    }
}
