//! Binary run-state codec shared by every crate that can checkpoint itself.
//!
//! Checkpoint/restore of a running emulation must be **bitwise-exact**: a
//! restored run has to continue on the identical float trajectory, so all
//! values round-trip by bit pattern (`f64::to_bits`) and the format is a
//! plain little-endian byte stream with no text round-trip anywhere.
//!
//! The stream is self-describing only as far as crash safety needs:
//!
//! * a 4-byte magic and a `u32` format version up front,
//! * a `u32` *tag* before each logical section ([`StateWriter::tag`] /
//!   [`StateReader::expect_tag`]) so a writer/reader ordering bug surfaces
//!   as a typed [`StateError::TagMismatch`] instead of silently decoding
//!   garbage floats,
//! * length-prefixed arrays with a hard element cap so a torn or corrupt
//!   record cannot ask for a multi-gigabyte allocation.
//!
//! Large, mostly-zero byte arrays (emulated memories) go through a zero-run
//! RLE ([`StateWriter::bytes_rle`]) — a 16 MiB idle memory image costs a few
//! dozen bytes on the wire.

use std::error::Error;
use std::fmt;

/// Hard cap on a single decoded array, in elements. A window checkpoint of
/// the mega mesh (110k cells) is a few MB; anything asking for more than
/// this is a corrupt or hostile record.
const MAX_ELEMS: u64 = 1 << 28;

/// Decoding error.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum StateError {
    /// The stream did not start with the expected 4-byte magic.
    BadMagic {
        /// Magic the reader expected.
        expected: [u8; 4],
        /// Bytes actually found (zero-padded if the stream is shorter).
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the stream.
        found: u32,
        /// Highest version this build can decode.
        supported: u32,
    },
    /// The stream ended in the middle of a value.
    UnexpectedEof {
        /// Byte offset at which more data was needed.
        offset: usize,
    },
    /// A section tag did not match the reader's expectation — the writer and
    /// reader disagree about the field order.
    TagMismatch {
        /// Tag the reader expected.
        expected: u32,
        /// Tag found in the stream.
        found: u32,
    },
    /// An array length exceeded the sanity cap or the expected size.
    BadLength {
        /// Length found in the stream.
        found: u64,
        /// Maximum the reader would accept.
        max: u64,
    },
    /// A decoded value was outside its legal range (enum discriminant,
    /// boolean, register index…).
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// Decoding finished with bytes left over — the writer wrote more than
    /// the reader consumed.
    TrailingBytes {
        /// Number of undecoded bytes.
        remaining: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::BadMagic { expected, found } => {
                write!(
                    f,
                    "bad state magic: expected {:?}, found {:?}",
                    String::from_utf8_lossy(expected),
                    String::from_utf8_lossy(found)
                )
            }
            StateError::UnsupportedVersion { found, supported } => {
                write!(f, "state format version {found} is newer than supported {supported}")
            }
            StateError::UnexpectedEof { offset } => {
                write!(f, "state stream truncated at byte {offset}")
            }
            StateError::TagMismatch { expected, found } => {
                write!(f, "state section tag mismatch: expected {expected:#x}, found {found:#x}")
            }
            StateError::BadLength { found, max } => {
                write!(f, "state array length {found} exceeds limit {max}")
            }
            StateError::BadValue { what, value } => {
                write!(f, "state value out of range: {what} = {value}")
            }
            StateError::TrailingBytes { remaining } => {
                write!(f, "state stream has {remaining} undecoded trailing bytes")
            }
        }
    }
}

impl Error for StateError {}

/// Append-only encoder for one checkpoint stream.
#[derive(Clone, Debug)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// Starts a stream with a 4-byte magic and a format version.
    pub fn new(magic: [u8; 4], version: u32) -> StateWriter {
        let mut w = StateWriter { buf: Vec::with_capacity(256) };
        w.buf.extend_from_slice(&magic);
        w.u32(version);
        w
    }

    /// Finishes the stream and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a section tag; [`StateReader::expect_tag`] checks it.
    pub fn tag(&mut self, tag: u32) {
        self.u32(tag);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (bitwise round-trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a length-prefixed `f64` slice by bit pattern.
    pub fn f64_slice(&mut self, v: &[f64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x.to_bits());
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.usize(v.len());
        for &x in v {
            self.u64(x);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self, v: &[u32]) {
        self.usize(v.len());
        for &x in v {
            self.u32(x);
        }
    }

    /// Writes a length-prefixed raw byte slice (no compression).
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a byte slice with zero-run RLE: total length, then chunks of
    /// either a zero run (`0u8`, run length) or a literal run (`1u8`, run
    /// length, bytes). Runs shorter than 16 zeros are not worth a chunk
    /// header and stay literal.
    pub fn bytes_rle(&mut self, v: &[u8]) {
        const MIN_ZERO_RUN: usize = 16;
        self.usize(v.len());
        let mut i = 0;
        while i < v.len() {
            if v[i] == 0 {
                let mut j = i;
                while j < v.len() && v[j] == 0 {
                    j += 1;
                }
                if j - i >= MIN_ZERO_RUN {
                    self.u8(0);
                    self.usize(j - i);
                    i = j;
                    continue;
                }
            }
            // Literal run: up to the next long zero run (or the end).
            let start = i;
            while i < v.len() {
                if v[i] == 0 {
                    let mut j = i;
                    while j < v.len() && v[j] == 0 {
                        j += 1;
                    }
                    if j - i >= MIN_ZERO_RUN {
                        break;
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            self.u8(1);
            self.usize(i - start);
            self.buf.extend_from_slice(&v[start..i]);
        }
    }
}

/// Decoder for a stream produced by [`StateWriter`].
#[derive(Clone, Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// Opens a stream, checking the magic and version. Returns the reader
    /// and the version found (always `<= supported_version`).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadMagic`] or [`StateError::UnsupportedVersion`].
    pub fn new(
        buf: &'a [u8],
        magic: [u8; 4],
        supported_version: u32,
    ) -> Result<(StateReader<'a>, u32), StateError> {
        let mut found = [0u8; 4];
        for (i, b) in buf.iter().take(4).enumerate() {
            found[i] = *b;
        }
        if buf.len() < 4 || found != magic {
            return Err(StateError::BadMagic { expected: magic, found });
        }
        let mut r = StateReader { buf, pos: 4 };
        let version = r.u32()?;
        if version > supported_version {
            return Err(StateError::UnsupportedVersion { found: version, supported: supported_version });
        }
        Ok((r, version))
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Checks that the stream is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TrailingBytes`] if bytes remain.
    pub fn finish(&self) -> Result<(), StateError> {
        if self.remaining() != 0 {
            return Err(StateError::TrailingBytes { remaining: self.remaining() });
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StateError> {
        if self.buf.len() - self.pos < n {
            return Err(StateError::UnexpectedEof { offset: self.buf.len() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a section tag and checks it against the expectation.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::TagMismatch`] on disagreement.
    pub fn expect_tag(&mut self, expected: u32) -> Result<(), StateError> {
        let found = self.u32()?;
        if found != expected {
            return Err(StateError::TagMismatch { expected, found });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::UnexpectedEof`] if the stream is exhausted.
    pub fn u8(&mut self) -> Result<u8, StateError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool (must be 0 or 1).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadValue`] on any other byte.
    pub fn bool(&mut self) -> Result<bool, StateError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(StateError::BadValue { what: "bool", value: u64::from(v) }),
        }
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::UnexpectedEof`] if the stream is exhausted.
    pub fn u32(&mut self) -> Result<u32, StateError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::UnexpectedEof`] if the stream is exhausted.
    pub fn u64(&mut self) -> Result<u64, StateError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` written by [`StateWriter::usize`], capped for sanity.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] beyond the element cap.
    pub fn usize(&mut self) -> Result<usize, StateError> {
        let v = self.u64()?;
        if v > MAX_ELEMS {
            return Err(StateError::BadLength { found: v, max: MAX_ELEMS });
        }
        Ok(v as usize)
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::UnexpectedEof`] if the stream is exhausted.
    pub fn f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed `f64` vector.
    ///
    /// # Errors
    ///
    /// Propagates length and EOF errors.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, StateError> {
        let n = self.usize()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `f64` vector that must have exactly `n`
    /// elements (sized by the live object being restored into).
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] on a size mismatch.
    pub fn f64_vec_exact(&mut self, n: usize) -> Result<Vec<f64>, StateError> {
        let found = self.usize()?;
        if found != n {
            return Err(StateError::BadLength { found: found as u64, max: n as u64 });
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u64` vector.
    ///
    /// # Errors
    ///
    /// Propagates length and EOF errors.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, StateError> {
        let n = self.usize()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `u32` vector.
    ///
    /// # Errors
    ///
    /// Propagates length and EOF errors.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, StateError> {
        let n = self.usize()?;
        let mut v = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed raw byte vector.
    ///
    /// # Errors
    ///
    /// Propagates length and EOF errors.
    pub fn bytes(&mut self) -> Result<Vec<u8>, StateError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a zero-run RLE byte array written by [`StateWriter::bytes_rle`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if the chunks do not reassemble to
    /// the prefixed length, [`StateError::BadValue`] on an unknown chunk kind.
    pub fn bytes_rle(&mut self) -> Result<Vec<u8>, StateError> {
        let total = self.usize()?;
        let mut v = vec![0u8; total];
        let mut at = 0usize;
        while at < total {
            let kind = self.u8()?;
            let run = self.usize()?;
            if run > total - at {
                return Err(StateError::BadLength { found: run as u64, max: (total - at) as u64 });
            }
            match kind {
                0 => {} // already zeroed
                1 => v[at..at + run].copy_from_slice(self.take(run)?),
                k => return Err(StateError::BadValue { what: "rle chunk kind", value: u64::from(k) }),
            }
            at += run;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TSTT";

    #[test]
    fn primitives_round_trip_bitwise() {
        let mut w = StateWriter::new(MAGIC, 1);
        w.tag(0xA1);
        w.u8(7);
        w.bool(true);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.usize(42);
        w.f64(-0.0);
        w.f64(f64::NAN);
        w.f64(1.0 / 3.0);
        let bytes = w.into_bytes();

        let (mut r, version) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(version, 1);
        r.expect_tag(0xA1).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.f64().unwrap().is_nan());
        assert_eq!(r.f64().unwrap().to_bits(), (1.0f64 / 3.0).to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn slices_round_trip() {
        let f = [1.5, -2.25, f64::INFINITY];
        let u = [0u64, 9, u64::MAX];
        let x = [3u32, 0, 0xFFFF_FFFF];
        let mut w = StateWriter::new(MAGIC, 1);
        w.f64_slice(&f);
        w.u64_slice(&u);
        w.u32_slice(&x);
        w.bytes(b"hello");
        let bytes = w.into_bytes();
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.f64_vec().unwrap(), f.to_vec());
        assert_eq!(r.u64_vec().unwrap(), u.to_vec());
        assert_eq!(r.u32_vec().unwrap(), x.to_vec());
        assert_eq!(r.bytes().unwrap(), b"hello");
        r.finish().unwrap();
    }

    #[test]
    fn rle_round_trips_and_compresses_zeros() {
        let mut data = vec![0u8; 1 << 16];
        data[100] = 7;
        data[40_000] = 1;
        data[40_001] = 2;
        let mut w = StateWriter::new(MAGIC, 1);
        w.bytes_rle(&data);
        let bytes = w.into_bytes();
        assert!(bytes.len() < 200, "mostly-zero 64 KiB should RLE to <200 B, got {}", bytes.len());
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.bytes_rle().unwrap(), data);
        r.finish().unwrap();
    }

    #[test]
    fn rle_handles_dense_and_edge_data() {
        for data in [
            vec![],
            vec![1u8, 2, 3],
            vec![0u8; 3],
            (0..=255u8).cycle().take(5000).collect::<Vec<_>>(),
            {
                let mut v = vec![9u8; 100];
                v.extend_from_slice(&[0u8; 15]); // short zero run stays literal
                v.extend_from_slice(&[8u8; 10]);
                v.extend_from_slice(&[0u8; 1000]);
                v.push(1);
                v
            },
        ] {
            let mut w = StateWriter::new(MAGIC, 1);
            w.bytes_rle(&data);
            let bytes = w.into_bytes();
            let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
            assert_eq!(r.bytes_rle().unwrap(), data);
            r.finish().unwrap();
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let w = StateWriter::new(MAGIC, 3);
        let bytes = w.into_bytes();
        assert!(matches!(
            StateReader::new(&bytes, *b"XXXX", 3),
            Err(StateError::BadMagic { .. })
        ));
        assert!(matches!(
            StateReader::new(&bytes, MAGIC, 2),
            Err(StateError::UnsupportedVersion { found: 3, supported: 2 })
        ));
        assert!(matches!(StateReader::new(b"TS", MAGIC, 1), Err(StateError::BadMagic { .. })));
    }

    #[test]
    fn tag_mismatch_and_truncation_are_typed() {
        let mut w = StateWriter::new(MAGIC, 1);
        w.tag(1);
        w.u64(5);
        let bytes = w.into_bytes();
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(r.expect_tag(2), Err(StateError::TagMismatch { expected: 2, found: 1 })));

        let (mut r, _) = StateReader::new(&bytes[..bytes.len() - 2], MAGIC, 1).unwrap();
        r.expect_tag(1).unwrap();
        assert!(matches!(r.u64(), Err(StateError::UnexpectedEof { .. })));
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut w = StateWriter::new(MAGIC, 1);
        w.u32(1);
        w.u32(2);
        let bytes = w.into_bytes();
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.u32().unwrap(), 1);
        assert!(matches!(r.finish(), Err(StateError::TrailingBytes { remaining: 4 })));
    }

    #[test]
    fn exact_vec_checks_length() {
        let mut w = StateWriter::new(MAGIC, 1);
        w.f64_slice(&[1.0, 2.0]);
        let bytes = w.into_bytes();
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(r.f64_vec_exact(3), Err(StateError::BadLength { found: 2, max: 3 })));
    }

    #[test]
    fn length_cap_rejects_huge_allocations() {
        let mut w = StateWriter::new(MAGIC, 1);
        w.u64(u64::MAX); // a "length" that must be rejected before allocating
        let bytes = w.into_bytes();
        let (mut r, _) = StateReader::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(r.usize(), Err(StateError::BadLength { .. })));
    }
}
