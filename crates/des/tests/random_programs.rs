//! Randomized differential testing: arbitrary (well-formed, halting) TE32
//! programs must produce identical cycle counts, register-visible results
//! and shared-memory contents on the fast engine and the cycle-driven
//! baseline. This is the strongest form of the cross-validation requirement
//! behind Table 3.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use temu_des::DesMachine;
use temu_isa::asm::assemble;
use temu_platform::{Machine, PlatformConfig};

/// Generates a halting SPMD program: a bounded outer loop over a block of
/// random ALU operations and private/shared loads and stores, ending in a
/// barrier-free halt. All memory accesses are word-aligned and in range.
fn random_program(rng: &mut StdRng, shared_heavy: bool) -> String {
    let mut src = String::from(
        ".equ MMIO, 0xFFFF0000\n\
         .equ SHARED, 0x10000000\n\
         start:\n\
             li r1, MMIO\n\
             lw s7, 0(r1)\n\
             li s6, 40\n\
         outer:\n",
    );
    let ops = rng.gen_range(10..60);
    for _ in 0..ops {
        let rd = rng.gen_range(2..12);
        let rs1 = rng.gen_range(1..12);
        let rs2 = rng.gen_range(1..12);
        match rng.gen_range(0..10) {
            0 => src.push_str(&format!("    add r{rd}, r{rs1}, r{rs2}\n")),
            1 => src.push_str(&format!("    sub r{rd}, r{rs1}, r{rs2}\n")),
            2 => src.push_str(&format!("    xor r{rd}, r{rs1}, r{rs2}\n")),
            3 => src.push_str(&format!("    mul r{rd}, r{rs1}, r{rs2}\n")),
            4 => src.push_str(&format!("    addi r{rd}, r{rs1}, {}\n", rng.gen_range(-100..100))),
            5 => src.push_str(&format!("    slli r{rd}, r{rs1}, {}\n", rng.gen_range(0..31))),
            6 => {
                // Private memory access, word-aligned, inside 0x4000..0x8000.
                let off = rng.gen_range(0..0x400) * 4;
                src.push_str(&format!("    li r13, {}\n", 0x4000 + off));
                if rng.gen_bool(0.5) {
                    src.push_str(&format!("    lw r{rd}, 0(r13)\n"));
                } else {
                    src.push_str(&format!("    sw r{rs1}, 0(r13)\n"));
                }
            }
            7 if shared_heavy => {
                // Shared memory access (word-aligned, per-core slot region).
                let off = rng.gen_range(0..0x100) * 4;
                src.push_str("    li r13, SHARED\n");
                src.push_str(&format!("    addi r13, r13, {off}\n"));
                if rng.gen_bool(0.5) {
                    src.push_str(&format!("    lw r{rd}, 0(r13)\n"));
                } else {
                    src.push_str(&format!("    sw r{rs1}, 0(r13)\n"));
                }
            }
            7 => src.push_str(&format!("    sltu r{rd}, r{rs1}, r{rs2}\n")),
            8 => src.push_str(&format!("    div r{rd}, r{rs1}, r{rs2}\n")),
            _ => src.push_str(&format!("    srl r{rd}, r{rs1}, r{rs2}\n")),
        }
    }
    src.push_str(
        "    addi s6, s6, -1\n\
             bnez s6, outer\n\
             halt\n",
    );
    src
}

fn cross_validate(seed: u64, platform: PlatformConfig, shared_heavy: bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let program = assemble(&random_program(&mut rng, shared_heavy)).expect("generator emits valid asm");

    let mut fast = Machine::new(platform.clone()).unwrap();
    fast.load_program_all(&program).unwrap();
    let f = fast.run_to_halt(50_000_000).unwrap();
    assert!(f.all_halted, "random programs halt by construction");

    let mut des = DesMachine::new(platform).unwrap();
    des.load_program_all(&program).unwrap();
    let d = des.run_to_halt(50_000_000).unwrap();
    assert!(d.all_halted);

    assert_eq!(f.cycles, d.cycles, "seed {seed}: cycle counts diverged");
    assert_eq!(f.instructions, d.instructions, "seed {seed}: instruction counts diverged");
    for core in 0..fast.num_cores() {
        for r in 0..32 {
            let reg = temu_isa::Reg::new(r);
            assert_eq!(
                fast.core(core).regs().read(reg),
                des.core(core).regs().read(reg),
                "seed {seed}: core {core} r{r} diverged"
            );
        }
    }
    assert_eq!(
        fast.shared().slice(0, 0x500),
        des.shared().slice(0, 0x500),
        "seed {seed}: shared memory diverged"
    );
}

#[test]
fn random_programs_single_core_bus() {
    for seed in 0..12 {
        cross_validate(seed, PlatformConfig::paper_bus(1), true);
    }
}

#[test]
fn random_programs_four_cores_bus_shared_heavy() {
    for seed in 100..108 {
        cross_validate(seed, PlatformConfig::paper_bus(4), true);
    }
}

#[test]
fn random_programs_four_cores_noc_shared_heavy() {
    for seed in 200..208 {
        cross_validate(seed, PlatformConfig::paper_noc(4), true);
    }
}

#[test]
fn random_programs_eight_cores() {
    for seed in 300..304 {
        cross_validate(seed, PlatformConfig::paper_bus(8), true);
    }
}

#[test]
fn random_programs_shared_cacheable() {
    let mut platform = PlatformConfig::paper_bus(4);
    platform.shared_cacheable = true;
    for seed in 400..406 {
        cross_validate(seed, platform.clone(), true);
    }
}

#[test]
fn random_programs_no_caches() {
    let mut platform = PlatformConfig::paper_bus(2);
    platform.icache = None;
    platform.dcache = None;
    for seed in 500..506 {
        cross_validate(seed, platform.clone(), true);
    }
}
